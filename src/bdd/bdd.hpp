// Bdd: a reference-counted RAII handle to a BDD function.
//
// A Bdd keeps its root node (and hence its whole cone) alive across garbage
// collections. All Boolean operators allocate through the owning manager.
#pragma once

#include <utility>
#include <vector>

#include "bdd/manager.hpp"
#include "bdd/types.hpp"
#include "support/assert.hpp"

namespace sliq::bdd {

class Bdd {
 public:
  /// Empty handle; usable only as an assignment target.
  Bdd() = default;

  Bdd(BddManager* mgr, Edge e) : mgr_(mgr), e_(e) {
    SLIQ_ASSERT(mgr_ != nullptr);
    mgr_->ref(e_);
  }

  Bdd(const Bdd& other) : mgr_(other.mgr_), e_(other.e_) {
    if (mgr_) mgr_->ref(e_);
  }

  Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), e_(other.e_) {
    other.mgr_ = nullptr;
  }

  Bdd& operator=(const Bdd& other) {
    if (this != &other) {
      if (other.mgr_) other.mgr_->ref(other.e_);
      release();
      mgr_ = other.mgr_;
      e_ = other.e_;
    }
    return *this;
  }

  Bdd& operator=(Bdd&& other) noexcept {
    if (this != &other) {
      release();
      mgr_ = other.mgr_;
      e_ = other.e_;
      other.mgr_ = nullptr;
    }
    return *this;
  }

  ~Bdd() { release(); }

  bool valid() const { return mgr_ != nullptr; }
  BddManager* manager() const { return mgr_; }
  Edge edge() const { return e_; }

  bool isZero() const { return e_ == kFalseEdge; }
  bool isOne() const { return e_ == kTrueEdge; }
  bool isConstantFn() const { return isConstant(e_); }

  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.e_ == b.e_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

  Bdd operator~() const { return Bdd(mgr_, !e_); }
  Bdd operator&(const Bdd& rhs) const {
    return Bdd(mgr_, mgr_->andE(e_, rhs.e_));
  }
  Bdd operator|(const Bdd& rhs) const {
    return Bdd(mgr_, mgr_->orE(e_, rhs.e_));
  }
  Bdd operator^(const Bdd& rhs) const {
    return Bdd(mgr_, mgr_->xorE(e_, rhs.e_));
  }
  Bdd& operator&=(const Bdd& rhs) { return *this = *this & rhs; }
  Bdd& operator|=(const Bdd& rhs) { return *this = *this | rhs; }
  Bdd& operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }

  /// ITE with this as the selector.
  Bdd ite(const Bdd& g, const Bdd& h) const {
    return Bdd(mgr_, mgr_->ite(e_, g.e_, h.e_));
  }

  Bdd cofactor(unsigned var, bool value) const {
    return Bdd(mgr_, mgr_->restrict1(e_, var, value));
  }
  Bdd cofactorCube(const std::vector<Literal>& cube) const {
    // restrictCube hands back a referenced edge; adopt it into a handle
    // (which takes its own reference) and release the handoff reference.
    const Edge e = mgr_->restrictCube(e_, cube);
    Bdd result(mgr_, e);
    mgr_->deref(e);
    return result;
  }

  bool eval(const std::vector<bool>& assignment) const {
    return mgr_->evalPoint(e_, assignment);
  }

  std::size_t nodeCount() const { return mgr_->nodeCount(e_); }

 private:
  void release() {
    if (mgr_) {
      mgr_->deref(e_);
      mgr_ = nullptr;
    }
  }

  BddManager* mgr_ = nullptr;
  Edge e_ = kFalseEdge;
};

/// Convenience: projection-function handle for variable v.
inline Bdd makeVar(BddManager& mgr, unsigned v) {
  return Bdd(&mgr, mgr.varEdge(v));
}

}  // namespace sliq::bdd
