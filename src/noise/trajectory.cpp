#include "noise/trajectory.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <future>
#include <memory>
#include <utility>

#include "core/engine_registry.hpp"
#include "stabilizer/stabilizer.hpp"
#include "support/bits.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace sliq::noise {

namespace {

/// One channel application site: `channel` acts on (q0, q1) (q1 unused for
/// one-qubit channels). Pointers reference the NoiseModel, which outlives
/// every plan.
struct ChannelApplication {
  const PauliChannel* channel;
  unsigned q0, q1;
};

/// plan[i] = the channel applications attached after gate i, in the
/// canonical order both execution paths share: gate1/gate2 rules first
/// (operands in (controls..., targets...) order), then idle rules (idle
/// qubits ascending). The plan depends only on (model, circuit), so it is
/// built once per run and shared read-only by every worker; per trajectory
/// only the channel.sample() draws remain — one uniform deviate per entry.
using NoisePlan = std::vector<std::vector<ChannelApplication>>;

NoisePlan buildNoisePlan(const NoiseModel& model,
                         const QuantumCircuit& circuit) {
  const unsigned n = circuit.numQubits();
  NoisePlan plan;
  plan.reserve(circuit.gateCount());
  for (const Gate& gate : circuit.gates()) {
    std::vector<ChannelApplication> sites;
    std::vector<unsigned> operands;
    operands.reserve(gate.arity());
    operands.insert(operands.end(), gate.controls.begin(),
                    gate.controls.end());
    operands.insert(operands.end(), gate.targets.begin(), gate.targets.end());

    // Measure/reset are not gates: the gate1/gate2 rules do not fire
    // (readout error models measurement noise instead). The shared idle
    // loop below still applies — the op's target counts as busy, so only
    // the *other* qubits pick up idle noise.
    if (gate.isDynamicOp()) {
      // fall through to the idle rules only
    } else if (operands.size() == 1) {
      for (const AttachedChannel& rule : model.afterGate1()) {
        if (rule.appliesTo(operands[0])) {
          sites.push_back({&rule.channel, operands[0], operands[0]});
        }
      }
    } else {
      for (const AttachedChannel& rule : model.afterGate2()) {
        if (rule.channel.arity() == 2) {
          if (rule.appliesTo(operands[0]) && rule.appliesTo(operands[1])) {
            sites.push_back({&rule.channel, operands[0], operands[1]});
          }
        } else {
          for (const unsigned q : operands) {
            if (rule.appliesTo(q)) sites.push_back({&rule.channel, q, q});
          }
        }
      }
    }
    if (!model.idle().empty()) {
      for (unsigned q = 0; q < n; ++q) {
        bool touched = false;
        for (const unsigned op : operands) touched = touched || op == q;
        if (touched) continue;
        for (const AttachedChannel& rule : model.idle()) {
          if (rule.appliesTo(q)) sites.push_back({&rule.channel, q, q});
        }
      }
    }
    plan.push_back(std::move(sites));
  }
  return plan;
}

/// Classical readout error: flips each bit with the model's probability.
/// Consumes one deviate per qubit whenever the model has readout error.
void applyReadout(std::vector<bool>& bits, const NoiseModel& model,
                  Rng& rng) {
  if (!model.hasReadoutError()) return;
  const double p = model.readoutFlip();
  for (std::size_t q = 0; q < bits.size(); ++q) {
    if (rng.uniform() < p) bits[q] = !bits[q];
  }
}

GateKind pauliGateKind(Pauli p) {
  switch (p) {
    case Pauli::kX: return GateKind::kX;
    case Pauli::kY: return GateKind::kY;
    case Pauli::kZ: return GateKind::kZ;
    case Pauli::kI: break;
  }
  throw NoiseError("identity term has no gate");
}

QuantumCircuit realizationFromPlan(const QuantumCircuit& circuit,
                                   const NoisePlan& plan, Rng& rng) {
  QuantumCircuit out(circuit.numQubits(), circuit.name() + "+noise");
  for (std::size_t i = 0; i < circuit.gateCount(); ++i) {
    out.append(circuit.gate(i));
    for (const ChannelApplication& site : plan[i]) {
      const PauliChannel& channel = *site.channel;
      const PauliTerm& term = channel.terms()[channel.sample(rng)];
      if (term.paulis[0] != Pauli::kI) {
        out.append(Gate{pauliGateKind(term.paulis[0]), {site.q0}, {}});
      }
      if (channel.arity() == 2 && term.paulis[1] != Pauli::kI) {
        out.append(Gate{pauliGateKind(term.paulis[1]), {site.q1}, {}});
      }
    }
  }
  return out;
}

}  // namespace

QuantumCircuit sampleRealization(const QuantumCircuit& circuit,
                                 const NoiseModel& model, Rng& rng) {
  if (circuit.isDynamic()) {
    throw NoiseError(
        "sampleRealization is defined for static circuits: a dynamic "
        "realization depends on mid-run outcomes (use runTrajectories, "
        "which replays the classical control per trajectory)");
  }
  return realizationFromPlan(circuit, buildNoisePlan(model, circuit), rng);
}

// ---- PauliFrame -----------------------------------------------------------

PauliFrame::PauliFrame(unsigned numQubits)
    : x_(numQubits, false), z_(numQubits, false) {}

bool PauliFrame::isIdentity() const {
  for (std::size_t q = 0; q < x_.size(); ++q) {
    if (x_[q] || z_[q]) return false;
  }
  return true;
}

void PauliFrame::multiply(unsigned q, Pauli p) {
  switch (p) {
    case Pauli::kI: break;
    case Pauli::kX: x_[q] = !x_[q]; break;
    case Pauli::kY: x_[q] = !x_[q]; z_[q] = !z_[q]; break;
    case Pauli::kZ: z_[q] = !z_[q]; break;
  }
}

void PauliFrame::propagateThrough(const Gate& gate) {
  auto nonClifford = [&] {
    throw NoiseError("Pauli frame cannot propagate through non-Clifford " +
                     gateName(gate));
  };
  if (gate.controls.size() > 1) nonClifford();
  switch (gate.kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
      break;  // Paulis commute with Paulis up to phase
    case GateKind::kH: {
      const unsigned t = gate.target();
      const bool x = x_[t];
      x_[t] = z_[t];
      z_[t] = x;  // X ↔ Z
      break;
    }
    case GateKind::kS:
    case GateKind::kSdg: {
      const unsigned t = gate.target();
      z_[t] = z_[t] != x_[t];  // X → ±Y
      break;
    }
    case GateKind::kRx90: {
      const unsigned t = gate.target();
      x_[t] = x_[t] != z_[t];  // Z → ∓Y
      break;
    }
    case GateKind::kRy90: {
      const unsigned t = gate.target();
      const bool x = x_[t];
      x_[t] = z_[t];
      z_[t] = x;  // X → ∓Z, Z → ±X
      break;
    }
    case GateKind::kCnot: {
      if (gate.controls.empty()) break;  // degenerate: plain X
      const unsigned c = gate.controls[0], t = gate.target();
      x_[t] = x_[t] != x_[c];  // X_c → X_c X_t
      z_[c] = z_[c] != z_[t];  // Z_t → Z_c Z_t
      break;
    }
    case GateKind::kCz: {
      if (gate.controls.empty()) break;  // degenerate: plain Z
      const unsigned c = gate.controls[0], t = gate.target();
      z_[t] = z_[t] != x_[c];  // X_c → X_c Z_t
      z_[c] = z_[c] != x_[t];  // X_t → X_t Z_c
      break;
    }
    case GateKind::kSwap: {
      if (!gate.controls.empty()) nonClifford();  // Fredkin
      const unsigned a = gate.targets[0], b = gate.targets[1];
      const bool xa = x_[a], za = z_[a];
      x_[a] = x_[b];
      z_[a] = z_[b];
      x_[b] = xa;
      z_[b] = za;
      break;
    }
    case GateKind::kT:
    case GateKind::kTdg:
      nonClifford();
      break;
    case GateKind::kMeasure:
    case GateKind::kReset:
      // Frames conjugate through unitaries only; collapse points end the
      // frame algebra (the runner never picks the fast path for dynamic
      // circuits — see runChecked).
      throw NoiseError(
          "Pauli frame cannot propagate through " + gateName(gate) +
          ": frames do not commute through classical control");
  }
}

// ---- trajectory execution -------------------------------------------------

namespace {

using Counts = std::map<std::string, std::uint64_t>;

/// Shared per-run inputs every worker reads (all const after setup).
struct RunContext {
  const std::string& engineName;
  const QuantumCircuit& circuit;
  const NoiseModel& model;
  const NoisePlan& plan;
  unsigned trajectories;
  /// Global index of trajectory 0 (TrajectoryOptions::firstTrajectory):
  /// substream selection uses firstTrajectory + t so shard runs reproduce
  /// the monolithic run's deviates slice for slice.
  unsigned firstTrajectory;
  RngState root;
};

/// Generic path: one fresh engine + sampled realization per trajectory.
void runGenericWorker(const RunContext& run, std::atomic<unsigned>& next,
                      Counts& local, metrics::Registry* reg) {
  const metrics::ScopedSpan span(reg, "trajectory.worker");
  const unsigned n = run.circuit.numQubits();
  for (;;) {
    const unsigned t = next.fetch_add(1, std::memory_order_relaxed);
    if (t >= run.trajectories) return;
    if (reg != nullptr) reg->add("trajectories.executed");
    Rng rng = run.root.split(run.firstTrajectory + t).rng();
    const QuantumCircuit realization =
        realizationFromPlan(run.circuit, run.plan, rng);
    const std::unique_ptr<Engine> engine = makeEngine(run.engineName, n);
    engine->run(realization);
    std::vector<bool> bits = engine->sampleShot(rng);
    applyReadout(bits, run.model, rng);
    ++local[bitsToString(bits)];
  }
}

/// Dynamic-circuit path: each trajectory re-executes the classical control
/// flow through Engine::runDynamic on a fresh engine, with the noise plan
/// injected per executed op through the DynamicInstrument hooks — the walk
/// (condition evaluation, creg updates, deviate order) lives in the facade,
/// so zero-noise trajectories are bit-identical to plain runDynamic. The
/// trajectory's "shot" is the final classical register.
void runDynamicWorker(const RunContext& run, std::atomic<unsigned>& next,
                      Counts& local, metrics::Registry* reg) {
  const metrics::ScopedSpan span(reg, "trajectory.worker");
  const unsigned n = run.circuit.numQubits();
  const bool readout = run.model.hasReadoutError();
  const double flip = readout ? run.model.readoutFlip() : 0.0;
  for (;;) {
    const unsigned t = next.fetch_add(1, std::memory_order_relaxed);
    if (t >= run.trajectories) return;
    if (reg != nullptr) reg->add("trajectories.executed");
    Rng rng = run.root.split(run.firstTrajectory + t).rng();
    const std::unique_ptr<Engine> engine = makeEngine(run.engineName, n);
    DynamicInstrument instrument;
    instrument.afterOp = [&run, &rng](Engine& e, std::size_t i) {
      for (const ChannelApplication& site : run.plan[i]) {
        const PauliChannel& channel = *site.channel;
        const PauliTerm& term = channel.terms()[channel.sample(rng)];
        if (term.paulis[0] != Pauli::kI) {
          e.applyGate(Gate{pauliGateKind(term.paulis[0]), {site.q0}, {}});
        }
        if (channel.arity() == 2 && term.paulis[1] != Pauli::kI) {
          e.applyGate(Gate{pauliGateKind(term.paulis[1]), {site.q1}, {}});
        }
      }
    };
    if (readout) {
      // Mid-circuit readout error: the *recorded* bit flips, and classical
      // control downstream sees the flipped record — one deviate per
      // executed measure, mirroring applyReadout's per-bit convention.
      instrument.recordMeasure = [&rng, flip](bool outcome) {
        return rng.uniform() < flip ? !outcome : outcome;
      };
    }
    const DynamicRun shot = engine->runDynamic(run.circuit, rng, &instrument);
    ++local[bitsToString(shot.creg)];
  }
}

/// Pauli-frame fast path: the ideal circuit runs once per worker; each
/// trajectory conjugates its sampled errors to the end of the circuit and
/// XORs the frame into an ideal shot. Channel sampling visits the same
/// plan sites as realizationFromPlan, so both paths consume substream
/// deviates identically.
void runFrameWorker(const RunContext& run, std::atomic<unsigned>& next,
                    Counts& local, metrics::Registry* reg) {
  const metrics::ScopedSpan span(reg, "trajectory.worker");
  const unsigned n = run.circuit.numQubits();
  const std::unique_ptr<Engine> engine = makeEngine(run.engineName, n);
  engine->run(run.circuit);
  for (;;) {
    const unsigned t = next.fetch_add(1, std::memory_order_relaxed);
    if (t >= run.trajectories) return;
    if (reg != nullptr) reg->add("trajectories.executed");
    Rng rng = run.root.split(run.firstTrajectory + t).rng();
    PauliFrame frame(n);
    for (std::size_t i = 0; i < run.circuit.gateCount(); ++i) {
      frame.propagateThrough(run.circuit.gate(i));
      for (const ChannelApplication& site : run.plan[i]) {
        const PauliChannel& channel = *site.channel;
        const PauliTerm& term = channel.terms()[channel.sample(rng)];
        frame.multiply(site.q0, term.paulis[0]);
        if (channel.arity() == 2) frame.multiply(site.q1, term.paulis[1]);
      }
    }
    std::vector<bool> bits = engine->sampleShot(rng);
    for (unsigned q = 0; q < n; ++q) {
      if (frame.x(q)) bits[q] = !bits[q];
    }
    applyReadout(bits, run.model, rng);
    ++local[bitsToString(bits)];
  }
}

/// Shared body. The caller has already verified the engine supports the
/// circuit (each public overload does it with the cheapest instance it has).
TrajectoryResult runChecked(const std::string& engineName,
                            const QuantumCircuit& circuit,
                            const NoiseModel& model,
                            const TrajectoryOptions& options) {
  model.validateForWidth(circuit.numQubits());

  const bool dynamic = circuit.isDynamic();
  if (options.forcePauliFrame) {
    if (options.forceGeneric) {
      throw NoiseError(
          "forceGeneric and forcePauliFrame are mutually exclusive");
    }
    if (dynamic) {
      throw NoiseError(
          "Pauli-frame fast path cannot execute dynamic circuits: frames "
          "do not commute through classical control (measure/reset/if)");
    }
    if (!StabilizerSimulator::supports(circuit)) {
      throw NoiseError(
          "Pauli-frame fast path requires a Clifford circuit");
    }
  }
  if (dynamic &&
      !EngineRegistry::instance().capabilities(engineName).dynamicCircuits) {
    throw NoiseError("engine '" + engineName +
                     "' does not declare the dynamic-circuits capability");
  }

  TrajectoryResult result;
  result.trajectories = options.trajectories;
  // Pauli insertions keep a Clifford circuit Clifford, so the frame path is
  // valid exactly when the ideal circuit is stabilizer-simulable AND static
  // (a classical condition decides mid-run whether a Clifford gate exists —
  // no frame conjugation order is correct for both branches). The choice
  // depends only on (circuit, options) — never on the thread count.
  result.usedPauliFrameFastPath =
      !dynamic && !options.forceGeneric &&
      StabilizerSimulator::supports(circuit);
  if (options.trajectories == 0) return result;

  const unsigned threads =
      std::min(options.threads == 0 ? ThreadPool::hardwareConcurrency()
                                    : options.threads,
               options.trajectories);
  result.threadsUsed = std::max(1u, threads);

  const NoisePlan plan = buildNoisePlan(model, circuit);
  const RunContext run{engineName,
                       circuit,
                       model,
                       plan,
                       options.trajectories,
                       options.firstTrajectory,
                       RngState{options.seed}};
  std::atomic<unsigned> next{0};
  std::vector<Counts> locals(result.threadsUsed);

  // Telemetry: one registry per worker (span track w+1), merged back into
  // the caller's sink in worker-index order after the join — the merged
  // counter totals are deterministic even though the per-worker split is
  // not (workers pull trajectory indices from the shared atomic).
  const bool record =
      options.metrics != nullptr && options.metrics->enabled();
  std::vector<std::unique_ptr<metrics::Registry>> workerRegs;
  if (record) {
    workerRegs.reserve(result.threadsUsed);
    for (unsigned w = 0; w < result.threadsUsed; ++w) {
      workerRegs.push_back(std::make_unique<metrics::Registry>());
      workerRegs.back()->enable(w + 1);
    }
  }

  const bool framePath = result.usedPauliFrameFastPath;
  WallTimer timer;
  {
    // The pool is declared after `locals`/`next` so that unwinding on an
    // exception joins the workers before their shared state dies.
    ThreadPool pool(result.threadsUsed);
    std::vector<std::future<void>> done;
    done.reserve(result.threadsUsed);
    for (unsigned w = 0; w < result.threadsUsed; ++w) {
      Counts& local = locals[w];
      metrics::Registry* reg = record ? workerRegs[w].get() : nullptr;
      done.push_back(
          pool.submit([&run, &next, &local, reg, framePath, dynamic] {
            if (framePath) {
              runFrameWorker(run, next, local, reg);
            } else if (dynamic) {
              runDynamicWorker(run, next, local, reg);
            } else {
              runGenericWorker(run, next, local, reg);
            }
          }));
    }
    std::exception_ptr failure;
    for (std::future<void>& future : done) {
      try {
        future.get();
      } catch (...) {
        if (!failure) failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
  }
  result.seconds = timer.seconds();
  for (const Counts& local : locals) {
    for (const auto& [key, count] : local) result.counts[key] += count;
  }
  if (record) {
    for (const auto& wr : workerRegs) options.metrics->merge(*wr);
    options.metrics->gaugeSet("trajectory.threads", result.threadsUsed);
    options.metrics->counterSet("trajectory.frame_fast_path",
                                framePath ? 1 : 0);
    options.metrics->timerAdd("trajectory.run", result.seconds);
  }
  return result;
}

}  // namespace

// ---- trajectory expectations ----------------------------------------------

namespace {

/// Shared inputs of one expectation run (all const after setup).
struct ExpectationRunContext {
  const std::string& engineName;
  const QuantumCircuit& circuit;
  const NoisePlan& plan;
  const PauliObservable& observable;
  /// observable.terms()[s] wrapped as a standalone 1.0-coefficient
  /// observable, built once so workers never re-normalize factor lists.
  const std::vector<PauliObservable>& singles;
  /// Per-string readout attenuation (1−2p)^|support| — closed form of the
  /// symmetric flip channel on a parity observable, applied analytically so
  /// no readout deviates are drawn.
  const std::vector<double>& readoutFactors;
  unsigned trajectories;
  /// Global index of trajectory 0 — same substream contract as RunContext.
  unsigned firstTrajectory;
  RngState root;
};

std::vector<double> readoutAttenuation(const NoiseModel& model,
                                       const PauliObservable& observable) {
  std::vector<double> factors;
  factors.reserve(observable.terms().size());
  for (const PauliString& term : observable.terms()) {
    factors.push_back(
        model.hasReadoutError()
            ? std::pow(1.0 - 2.0 * model.readoutFlip(),
                       static_cast<double>(term.factors.size()))
            : 1.0);
  }
  return factors;
}

/// Generic path: one fresh engine + sampled realization per trajectory;
/// the engine's (native or fallback) expectation is exact per realization.
void runExpectationGenericWorker(const ExpectationRunContext& run,
                                 std::atomic<unsigned>& next,
                                 std::vector<double>& values,
                                 metrics::Registry* reg) {
  const metrics::ScopedSpan span(reg, "trajectory.worker");
  const unsigned n = run.circuit.numQubits();
  for (;;) {
    const unsigned t = next.fetch_add(1, std::memory_order_relaxed);
    if (t >= run.trajectories) return;
    if (reg != nullptr) reg->add("trajectories.executed");
    Rng rng = run.root.split(run.firstTrajectory + t).rng();
    const QuantumCircuit realization =
        realizationFromPlan(run.circuit, run.plan, rng);
    const std::unique_ptr<Engine> engine = makeEngine(run.engineName, n);
    engine->run(realization);
    double value = 0;
    const auto& terms = run.observable.terms();
    for (std::size_t s = 0; s < terms.size(); ++s) {
      value += terms[s].coefficient * run.readoutFactors[s] *
               engine->expectation(run.singles[s]);
    }
    values[t] = value;
  }
}

/// Pauli-frame fast path: the ideal circuit runs once per worker and every
/// string's ideal ⟨P⟩ is computed once; a trajectory then only needs its
/// frame's sign per string: F P F = ±P, with − exactly when F and P
/// anticommute (symplectic product), so ⟨F P F⟩ = ±⟨P⟩ — exact, because
/// conjugating a Pauli observable by a Pauli error is again ±P.
void runExpectationFrameWorker(const ExpectationRunContext& run,
                               std::atomic<unsigned>& next,
                               std::vector<double>& values,
                               metrics::Registry* reg) {
  const metrics::ScopedSpan span(reg, "trajectory.worker");
  const unsigned n = run.circuit.numQubits();
  const std::unique_ptr<Engine> engine = makeEngine(run.engineName, n);
  engine->run(run.circuit);
  const auto& terms = run.observable.terms();
  std::vector<double> ideal;
  ideal.reserve(terms.size());
  for (const PauliObservable& single : run.singles)
    ideal.push_back(engine->expectation(single));
  for (;;) {
    const unsigned t = next.fetch_add(1, std::memory_order_relaxed);
    if (t >= run.trajectories) return;
    if (reg != nullptr) reg->add("trajectories.executed");
    Rng rng = run.root.split(run.firstTrajectory + t).rng();
    PauliFrame frame(n);
    for (std::size_t i = 0; i < run.circuit.gateCount(); ++i) {
      frame.propagateThrough(run.circuit.gate(i));
      for (const ChannelApplication& site : run.plan[i]) {
        const PauliChannel& channel = *site.channel;
        const PauliTerm& term = channel.terms()[channel.sample(rng)];
        frame.multiply(site.q0, term.paulis[0]);
        if (channel.arity() == 2) frame.multiply(site.q1, term.paulis[1]);
      }
    }
    double value = 0;
    for (std::size_t s = 0; s < terms.size(); ++s) {
      bool anticommute = false;
      for (const PauliFactor& f : terms[s].factors) {
        const bool px = f.op == Pauli::kX || f.op == Pauli::kY;
        const bool pz = f.op == Pauli::kZ || f.op == Pauli::kY;
        anticommute ^= (frame.x(f.qubit) && pz) != (frame.z(f.qubit) && px);
      }
      value += (anticommute ? -1.0 : 1.0) * terms[s].coefficient *
               run.readoutFactors[s] * ideal[s];
    }
    values[t] = value;
  }
}

ExpectationResult runExpectationChecked(const std::string& engineName,
                                        const QuantumCircuit& circuit,
                                        const NoiseModel& model,
                                        const PauliObservable& observable,
                                        const TrajectoryOptions& options) {
  model.validateForWidth(circuit.numQubits());
  observable.validateForWidth(circuit.numQubits());
  if (circuit.isDynamic()) {
    throw NoiseError(
        "trajectory expectation requires a static circuit: a dynamic "
        "circuit's <O> is conditioned on its classical outcome stream "
        "(mirrors the CLI's --observable restriction)");
  }

  ExpectationResult result;
  result.trajectories = options.trajectories;
  result.usedPauliFrameFastPath =
      !options.forceGeneric && StabilizerSimulator::supports(circuit);
  if (options.trajectories == 0) return result;

  const unsigned threads =
      std::min(options.threads == 0 ? ThreadPool::hardwareConcurrency()
                                    : options.threads,
               options.trajectories);
  result.threadsUsed = std::max(1u, threads);

  const NoisePlan plan = buildNoisePlan(model, circuit);
  std::vector<PauliObservable> singles;
  singles.reserve(observable.terms().size());
  for (const PauliString& term : observable.terms())
    singles.push_back(singleStringObservable(term));
  const std::vector<double> readoutFactors =
      readoutAttenuation(model, observable);
  const ExpectationRunContext run{engineName,
                                  circuit,
                                  plan,
                                  observable,
                                  singles,
                                  readoutFactors,
                                  options.trajectories,
                                  options.firstTrajectory,
                                  RngState{options.seed}};
  std::atomic<unsigned> next{0};
  // Indexed by trajectory: workers write disjoint slots, and the final
  // reduction walks the indices in order — the float sums are therefore
  // bit-identical for every thread count.
  std::vector<double> values(options.trajectories, 0.0);

  // Same per-worker telemetry scheme as runChecked (merge in index order).
  const bool record =
      options.metrics != nullptr && options.metrics->enabled();
  std::vector<std::unique_ptr<metrics::Registry>> workerRegs;
  if (record) {
    workerRegs.reserve(result.threadsUsed);
    for (unsigned w = 0; w < result.threadsUsed; ++w) {
      workerRegs.push_back(std::make_unique<metrics::Registry>());
      workerRegs.back()->enable(w + 1);
    }
  }

  const bool framePath = result.usedPauliFrameFastPath;
  WallTimer timer;
  {
    ThreadPool pool(result.threadsUsed);
    std::vector<std::future<void>> done;
    done.reserve(result.threadsUsed);
    for (unsigned w = 0; w < result.threadsUsed; ++w) {
      metrics::Registry* reg = record ? workerRegs[w].get() : nullptr;
      done.push_back(pool.submit([&run, &next, &values, reg, framePath] {
        if (framePath) {
          runExpectationFrameWorker(run, next, values, reg);
        } else {
          runExpectationGenericWorker(run, next, values, reg);
        }
      }));
    }
    std::exception_ptr failure;
    for (std::future<void>& future : done) {
      try {
        future.get();
      } catch (...) {
        if (!failure) failure = std::current_exception();
      }
    }
    if (failure) std::rethrow_exception(failure);
  }
  result.seconds = timer.seconds();
  if (record) {
    for (const auto& wr : workerRegs) options.metrics->merge(*wr);
    options.metrics->gaugeSet("trajectory.threads", result.threadsUsed);
    options.metrics->counterSet("trajectory.frame_fast_path",
                                framePath ? 1 : 0);
    options.metrics->timerAdd("trajectory.run", result.seconds);
  }

  double sum = 0;
  for (const double v : values) sum += v;
  result.mean = sum / options.trajectories;
  double sq = 0;
  for (const double v : values) sq += (v - result.mean) * (v - result.mean);
  result.stddev = options.trajectories > 1
                      ? std::sqrt(sq / (options.trajectories - 1))
                      : 0.0;
  result.standardError =
      result.stddev / std::sqrt(static_cast<double>(options.trajectories));
  return result;
}

}  // namespace

ExpectationResult runTrajectoryExpectation(const std::string& engineName,
                                           const QuantumCircuit& circuit,
                                           const NoiseModel& model,
                                           const PauliObservable& observable,
                                           const TrajectoryOptions& options) {
  {
    const std::unique_ptr<Engine> probe =
        makeEngine(engineName, circuit.numQubits());
    if (!probe->supports(circuit)) {
      throw NoiseError("engine '" + engineName +
                       "' does not support this circuit");
    }
  }
  return runExpectationChecked(engineName, circuit, model, observable,
                               options);
}

ExpectationResult runTrajectoryExpectation(Engine& prototype,
                                           const QuantumCircuit& circuit,
                                           const NoiseModel& model,
                                           const PauliObservable& observable,
                                           const TrajectoryOptions& options) {
  if (!prototype.supports(circuit)) {
    throw NoiseError("engine '" + prototype.name() +
                     "' does not support this circuit");
  }
  return runExpectationChecked(prototype.name(), circuit, model, observable,
                               options);
}

TrajectoryResult runTrajectories(const std::string& engineName,
                                 const QuantumCircuit& circuit,
                                 const NoiseModel& model,
                                 const TrajectoryOptions& options) {
  {
    // One probe instance answers supports() before any worker spawns. The
    // built-ins keep this cheap — in particular the statevector engine
    // allocates its 2^n array lazily, not at construction.
    const std::unique_ptr<Engine> probe =
        makeEngine(engineName, circuit.numQubits());
    if (!probe->supports(circuit)) {
      throw NoiseError("engine '" + engineName +
                       "' does not support this circuit");
    }
  }
  return runChecked(engineName, circuit, model, options);
}

TrajectoryResult runTrajectories(Engine& prototype,
                                 const QuantumCircuit& circuit,
                                 const NoiseModel& model,
                                 const TrajectoryOptions& options) {
  // The caller's instance answers supports() directly — no probe needed.
  if (!prototype.supports(circuit)) {
    throw NoiseError("engine '" + prototype.name() +
                     "' does not support this circuit");
  }
  return runChecked(prototype.name(), circuit, model, options);
}

}  // namespace sliq::noise
