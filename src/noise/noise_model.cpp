#include "noise/noise_model.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sliq::noise {

bool AttachedChannel::appliesTo(unsigned qubit) const {
  if (qubits.empty()) return true;
  return std::binary_search(qubits.begin(), qubits.end(), qubit);
}

namespace {

std::vector<unsigned> normalizedFilter(std::vector<unsigned> qubits) {
  std::sort(qubits.begin(), qubits.end());
  qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());
  return qubits;
}

void appendRuleSummaries(std::ostringstream& os, const char* label,
                         const std::vector<AttachedChannel>& rules,
                         bool& first) {
  for (const AttachedChannel& rule : rules) {
    os << (first ? "" : "; ") << label << ": " << rule.channel.summary();
    if (!rule.qubits.empty()) {
      os << " on";
      for (const unsigned q : rule.qubits) os << " " << q;
    }
    first = false;
  }
}

void validateRulesForWidth(const char* label,
                           const std::vector<AttachedChannel>& rules,
                           unsigned numQubits) {
  for (const AttachedChannel& rule : rules) {
    for (const unsigned q : rule.qubits) {
      if (q >= numQubits) {
        throw NoiseError(std::string(label) + " rule references qubit " +
                         std::to_string(q) + " but the circuit has only " +
                         std::to_string(numQubits) + " qubits");
      }
    }
  }
}

}  // namespace

void NoiseModel::addAfterGate1(PauliChannel channel,
                               std::vector<unsigned> qubits) {
  if (channel.arity() != 1) {
    throw NoiseError("gate1 rules take a one-qubit channel, got " +
                     channel.summary());
  }
  gate1_.push_back({std::move(channel), normalizedFilter(std::move(qubits))});
}

void NoiseModel::addAfterGate2(PauliChannel channel,
                               std::vector<unsigned> qubits) {
  gate2_.push_back({std::move(channel), normalizedFilter(std::move(qubits))});
}

void NoiseModel::addIdle(PauliChannel channel, std::vector<unsigned> qubits) {
  if (channel.arity() != 1) {
    throw NoiseError("idle rules take a one-qubit channel, got " +
                     channel.summary());
  }
  idle_.push_back({std::move(channel), normalizedFilter(std::move(qubits))});
}

void NoiseModel::setReadoutFlip(double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw NoiseError("measure: flip probability must be in [0, 1], got " +
                     std::to_string(p));
  }
  readoutFlip_ = p;
}

bool NoiseModel::empty() const {
  return gate1_.empty() && gate2_.empty() && idle_.empty() &&
         readoutFlip_ == 0;
}

std::string NoiseModel::summary() const {
  if (empty()) return "(no noise)";
  std::ostringstream os;
  bool first = true;
  appendRuleSummaries(os, "gate1", gate1_, first);
  appendRuleSummaries(os, "gate2", gate2_, first);
  appendRuleSummaries(os, "idle", idle_, first);
  if (readoutFlip_ > 0) {
    os << (first ? "" : "; ") << "measure: " << readoutFlip_;
  }
  return os.str();
}

void NoiseModel::validateForWidth(unsigned numQubits) const {
  validateRulesForWidth("gate1", gate1_, numQubits);
  validateRulesForWidth("gate2", gate2_, numQubits);
  validateRulesForWidth("idle", idle_, numQubits);
}

// ---- spec parsing ---------------------------------------------------------

namespace {

[[noreturn]] void specError(const std::string& origin, unsigned line,
                            const std::string& what) {
  throw NoiseSpecError(origin + ":" + std::to_string(line) + ": " + what);
}

/// Strict double parse (whole token, no garbage), mirroring the CLI's
/// strict integer parsing.
double parseDouble(const std::string& origin, unsigned line,
                   const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
    specError(origin, line, "expected a number, got '" + token + "'");
  }
  return value;
}

unsigned parseQubit(const std::string& origin, unsigned line,
                    const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(token.c_str(), &end, 10);
  if (token.empty() || token[0] == '-' || end == token.c_str() ||
      *end != '\0' || errno == ERANGE || value > 1u << 24) {
    specError(origin, line, "expected a qubit index, got '" + token + "'");
  }
  return static_cast<unsigned>(value);
}

/// Builds the channel named `name` for the given event class. `twoQubit`
/// selects the two-qubit depolarizing variant under gate2.
PauliChannel makeChannel(const std::string& origin, unsigned line,
                         const std::string& name, double param,
                         bool twoQubit) {
  try {
    if (name == "bitflip") return PauliChannel::bitFlip(param);
    if (name == "phaseflip") return PauliChannel::phaseFlip(param);
    if (name == "damping") return PauliChannel::amplitudeDampingTwirl(param);
    if (name == "depolarizing") {
      return twoQubit ? PauliChannel::depolarizing2(param)
                      : PauliChannel::depolarizing1(param);
    }
  } catch (const NoiseError& e) {
    specError(origin, line, e.what());
  }
  specError(origin, line,
            "unknown channel '" + name +
                "' (supported: bitflip, phaseflip, depolarizing, damping)");
}

}  // namespace

NoiseModel NoiseModel::parse(std::istream& in, const std::string& origin) {
  NoiseModel model;
  std::string line;
  unsigned lineNo = 0;
  bool sawMeasure = false;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank / comment-only line

    if (directive == "measure") {
      std::string prob;
      if (!(tokens >> prob)) {
        specError(origin, lineNo, "measure requires a flip probability");
      }
      std::string extra;
      if (tokens >> extra) {
        specError(origin, lineNo, "unexpected token '" + extra + "'");
      }
      if (sawMeasure) specError(origin, lineNo, "duplicate measure directive");
      sawMeasure = true;
      try {
        model.setReadoutFlip(parseDouble(origin, lineNo, prob));
      } catch (const NoiseSpecError&) {
        throw;
      } catch (const NoiseError& e) {
        specError(origin, lineNo, e.what());
      }
      continue;
    }

    if (directive != "gate1" && directive != "gate2" && directive != "idle") {
      specError(origin, lineNo,
                "unknown directive '" + directive +
                    "' (expected gate1, gate2, idle or measure)");
    }
    std::string channelName, paramToken;
    if (!(tokens >> channelName >> paramToken)) {
      specError(origin, lineNo,
                directive + " requires a channel name and a parameter");
    }
    const double param = parseDouble(origin, lineNo, paramToken);
    std::vector<unsigned> qubits;
    std::string word;
    if (tokens >> word) {
      if (word != "on") {
        specError(origin, lineNo, "unexpected token '" + word +
                                      "' (expected 'on q0 q1 ...')");
      }
      std::string qubitToken;
      while (tokens >> qubitToken) {
        qubits.push_back(parseQubit(origin, lineNo, qubitToken));
      }
      if (qubits.empty()) {
        specError(origin, lineNo, "'on' requires at least one qubit index");
      }
    }

    PauliChannel channel = makeChannel(origin, lineNo, channelName, param,
                                       directive == "gate2");
    try {
      if (directive == "gate1") {
        model.addAfterGate1(std::move(channel), std::move(qubits));
      } else if (directive == "gate2") {
        model.addAfterGate2(std::move(channel), std::move(qubits));
      } else {
        model.addIdle(std::move(channel), std::move(qubits));
      }
    } catch (const NoiseError& e) {
      specError(origin, lineNo, e.what());
    }
  }
  return model;
}

NoiseModel NoiseModel::parseString(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

NoiseModel NoiseModel::parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw NoiseSpecError("cannot open noise spec '" + path + "'");
  }
  return parse(in, path);
}

}  // namespace sliq::noise
