// Pauli noise channels — the probabilistic error operators the trajectory
// runner inserts into circuit realizations.
//
// Every channel here is a mixed-Pauli channel: a discrete distribution over
// Pauli operators on one or two qubits, stored with its exact per-Kraus
// probabilities. Restricting to Pauli terms is what keeps a noisy Clifford
// circuit inside the stabilizer formalism (the CHP / Pauli-frame fast path
// in trajectory.cpp) while still covering the standard device-noise set:
// bit flip, phase flip, depolarizing (1q and 2q), and amplitude damping via
// its Pauli-twirl approximation (see DESIGN.md §6 for the twirl derivation
// and its approximation error).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/observable.hpp"
#include "support/rng.hpp"

namespace sliq::noise {

// One Pauli type across the library: the observable subsystem
// (core/observable.hpp) owns the enum; the noise module re-exports it so
// channel/trajectory code (and the Pauli-frame ↔ observable conjugation in
// the expectation fast path) share a single vocabulary.
using sliq::Pauli;
using sliq::pauliChar;

class NoiseError : public std::runtime_error {
 public:
  explicit NoiseError(const std::string& what) : std::runtime_error(what) {}
};

/// One Kraus term of a mixed-Pauli channel: apply `paulis` with
/// `probability`. For 1-qubit channels paulis[1] is kI and unused.
struct PauliTerm {
  double probability;
  std::array<Pauli, 2> paulis;
};

class PauliChannel {
 public:
  // ---- factories (the supported channel set) -----------------------------
  /// X with probability p.
  static PauliChannel bitFlip(double p);
  /// Z with probability p.
  static PauliChannel phaseFlip(double p);
  /// Single-qubit depolarizing: each of X, Y, Z with probability p/3.
  static PauliChannel depolarizing1(double p);
  /// Two-qubit depolarizing: each of the 15 non-identity Pauli pairs with
  /// probability p/15.
  static PauliChannel depolarizing2(double p);
  /// Pauli-twirl approximation of amplitude damping with decay `gamma`:
  ///   p_X = p_Y = γ/4,  p_Z = (1 − √(1−γ))²/4,  p_I = (1 + √(1−γ))²/4
  /// (the diagonal of the damping channel's chi matrix; the twirl drops the
  /// off-diagonal coherences — exact for Pauli observables of the
  /// maximally mixed input, an O(γ) approximation in general).
  static PauliChannel amplitudeDampingTwirl(double gamma);

  const std::string& name() const { return name_; }
  /// 1 or 2 (how many qubits one application touches).
  unsigned arity() const { return arity_; }
  const std::vector<PauliTerm>& terms() const { return terms_; }
  /// Probability that an application is a no-op (the identity term).
  double identityProbability() const { return terms_.front().probability; }

  /// Samples one term index by inverse transform. Always consumes exactly
  /// one uniform deviate — the deterministic-replay contract the trajectory
  /// runner's RNG substream accounting relies on.
  std::size_t sample(Rng& rng) const;

  /// "depolarizing(p=0.01)" — for summaries and --list output.
  std::string summary() const;

 private:
  PauliChannel(std::string name, double parameter, unsigned arity,
               std::vector<PauliTerm> terms);

  std::string name_;
  double parameter_;
  unsigned arity_;
  std::vector<PauliTerm> terms_;  // terms_[0] is always the identity term
};

}  // namespace sliq::noise
