// NoiseModel — attaches Pauli channels to circuit events.
//
// A model is a set of rules keyed by event class:
//   gate1    after every single-qubit gate, on its target
//   gate2    after every multi-qubit gate, on its operands (a two-qubit
//            channel acts on the gate's first two qubits in
//            (controls..., targets...) order; a one-qubit channel acts on
//            every operand independently)
//   idle     during every gate, on each qubit the gate does NOT touch
//   measure  classical readout: each sampled bit flips with probability p
// plus an optional per-rule qubit filter ("on 2 3": only when the affected
// qubit — both qubits, for a two-qubit channel — is listed).
//
// Models parse from a line-based text spec (see examples/noise_basic.txt):
//   # comment
//   gate1 depolarizing 0.01
//   gate2 depolarizing 0.02
//   idle damping 0.002 on 0 1
//   measure 0.015
// Channel names: bitflip, phaseflip, depolarizing, damping. Under gate2,
// "depolarizing" means the two-qubit (15-term) variant.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "noise/channel.hpp"

namespace sliq::noise {

/// Parse failure, with the spec origin ("file:line") in the message.
class NoiseSpecError : public NoiseError {
 public:
  explicit NoiseSpecError(const std::string& what) : NoiseError(what) {}
};

/// One rule: a channel plus an optional qubit filter.
struct AttachedChannel {
  PauliChannel channel;
  std::vector<unsigned> qubits;  ///< sorted, deduplicated; empty = all

  bool appliesTo(unsigned qubit) const;
};

class NoiseModel {
 public:
  NoiseModel() = default;

  // ---- construction ------------------------------------------------------
  /// Attaches a one-qubit channel after every single-qubit gate.
  void addAfterGate1(PauliChannel channel, std::vector<unsigned> qubits = {});
  /// Attaches a channel (arity 1 or 2) after every multi-qubit gate.
  void addAfterGate2(PauliChannel channel, std::vector<unsigned> qubits = {});
  /// Attaches a one-qubit channel to idle qubits during every gate.
  void addIdle(PauliChannel channel, std::vector<unsigned> qubits = {});
  /// Sets the symmetric readout flip probability (0 disables).
  void setReadoutFlip(double p);

  // ---- queries -----------------------------------------------------------
  const std::vector<AttachedChannel>& afterGate1() const { return gate1_; }
  const std::vector<AttachedChannel>& afterGate2() const { return gate2_; }
  const std::vector<AttachedChannel>& idle() const { return idle_; }
  double readoutFlip() const { return readoutFlip_; }
  bool hasReadoutError() const { return readoutFlip_ > 0; }
  /// True when no rule can ever fire (ideal circuit).
  bool empty() const;
  /// One line, e.g. "gate1: depolarizing(p=0.01); measure: 0.015".
  std::string summary() const;
  /// Throws NoiseError if any qubit filter references a qubit >= numQubits.
  void validateForWidth(unsigned numQubits) const;

  // ---- spec parsing ------------------------------------------------------
  static NoiseModel parse(std::istream& in,
                          const std::string& origin = "<spec>");
  static NoiseModel parseString(const std::string& text);
  static NoiseModel parseFile(const std::string& path);

 private:
  std::vector<AttachedChannel> gate1_;
  std::vector<AttachedChannel> gate2_;
  std::vector<AttachedChannel> idle_;
  double readoutFlip_ = 0;
};

}  // namespace sliq::noise
