// Stochastic-trajectory execution of noisy circuits.
//
// A trajectory is one Monte-Carlo realization of a noisy circuit: walk the
// gate list, sample each attached Pauli channel (noise_model.hpp), and
// execute the resulting concrete circuit on an engine, then draw one
// full-register shot. Aggregating shots over many trajectories samples the
// noisy device's output distribution.
//
// Execution paths, chosen deterministically from (circuit, model, options):
//  - Pauli-frame fast path (Clifford circuits, any engine): the ideal
//    circuit runs ONCE per worker; each trajectory only conjugates its
//    sampled Pauli errors through the remaining Clifford gates (a
//    Pauli frame) and XORs the frame's X mask into an ideal shot. For the
//    chp engine this is the "Clifford + Pauli noise stays fully stabilizer"
//    path; it is valid for every engine because the frame algebra is
//    engine-independent.
//  - Generic path (any circuit): each trajectory instantiates a fresh
//    engine, runs its sampled realization, and draws one shot.
//
// Thread-determinism contract: trajectory t consumes only the RNG substream
// RngState{seed}.split(t) (see support/rng.hpp) and counts are an
// order-independent reduction, so results are bit-identical for every
// thread count — the property the tier-1 tests and the CLI acceptance
// check pin down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "noise/noise_model.hpp"
#include "support/rng.hpp"

namespace sliq {
class Engine;  // core/engine_registry.hpp
}

namespace sliq::noise {

struct TrajectoryOptions {
  unsigned trajectories = 1000;
  /// Worker threads; 0 auto-detects hardware concurrency. Results never
  /// depend on this value.
  unsigned threads = 1;
  std::uint64_t seed = 1;
  /// Disables the Pauli-frame fast path (tests and the bench baseline).
  bool forceGeneric = false;
};

struct TrajectoryResult {
  /// Shot histogram keyed by bitstring (qubit n-1 leftmost, like the CLI's
  /// shot output). std::map keeps the iteration order deterministic.
  std::map<std::string, std::uint64_t> counts;
  unsigned trajectories = 0;
  unsigned threadsUsed = 0;
  bool usedPauliFrameFastPath = false;
  double seconds = 0;

  double trajectoriesPerSecond() const {
    return seconds > 0 ? trajectories / seconds : 0;
  }
};

/// Runs `options.trajectories` noise trajectories of `circuit` under
/// `model` on the engine registered as `engineName`, fanning them across
/// worker threads. Throws NoiseError for an infeasible combination (model
/// qubit filters out of range, engine unsupported for the circuit).
TrajectoryResult runTrajectories(const std::string& engineName,
                                 const QuantumCircuit& circuit,
                                 const NoiseModel& model,
                                 const TrajectoryOptions& options = {});

/// Facade overload: `prototype` names the engine (its own state is not
/// touched — trajectory execution needs one engine instance per worker or
/// per trajectory, created through the registry).
TrajectoryResult runTrajectories(Engine& prototype,
                                 const QuantumCircuit& circuit,
                                 const NoiseModel& model,
                                 const TrajectoryOptions& options = {});

/// One sampled Pauli-insertion realization of `circuit` under `model` —
/// the generic path's per-trajectory circuit, exposed for tests. Consumes
/// one uniform deviate per channel application, in gate order (gate1/gate2
/// rules first, then idle rules, operands in (controls..., targets...)
/// order, idle qubits ascending).
QuantumCircuit sampleRealization(const QuantumCircuit& circuit,
                                 const NoiseModel& model, Rng& rng);

/// An n-qubit Pauli operator tracked up to phase (phases never affect
/// Z-basis statistics), with conjugation through the Clifford gate set —
/// the fast path's error representation, exposed for tests.
class PauliFrame {
 public:
  explicit PauliFrame(unsigned numQubits);

  unsigned numQubits() const { return static_cast<unsigned>(x_.size()); }
  bool x(unsigned q) const { return x_[q]; }
  bool z(unsigned q) const { return z_[q]; }
  bool isIdentity() const;

  /// Multiplies `p` on qubit `q` into the frame (Paulis compose by XOR).
  void multiply(unsigned q, Pauli p);
  /// Replaces the frame P by U·P·U† for Clifford `gate`; throws NoiseError
  /// for non-Clifford gates (the fast path never reaches them).
  void propagateThrough(const Gate& gate);

 private:
  std::vector<bool> x_, z_;
};

}  // namespace sliq::noise
