// Stochastic-trajectory execution of noisy circuits.
//
// A trajectory is one Monte-Carlo realization of a noisy circuit: walk the
// gate list, sample each attached Pauli channel (noise_model.hpp), and
// execute the resulting concrete circuit on an engine, then draw one
// full-register shot. Aggregating shots over many trajectories samples the
// noisy device's output distribution.
//
// Execution paths, chosen deterministically from (circuit, model, options):
//  - Pauli-frame fast path (Clifford circuits, any engine): the ideal
//    circuit runs ONCE per worker; each trajectory only conjugates its
//    sampled Pauli errors through the remaining Clifford gates (a
//    Pauli frame) and XORs the frame's X mask into an ideal shot. For the
//    chp engine this is the "Clifford + Pauli noise stays fully stabilizer"
//    path; it is valid for every engine because the frame algebra is
//    engine-independent.
//  - Generic path (any circuit): each trajectory instantiates a fresh
//    engine, runs its sampled realization, and draws one shot.
//
// Thread-determinism contract: trajectory t consumes only the RNG substream
// RngState{seed}.split(t) (see support/rng.hpp) and counts are an
// order-independent reduction, so results are bit-identical for every
// thread count — the property the tier-1 tests and the CLI acceptance
// check pin down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/observable.hpp"
#include "noise/noise_model.hpp"
#include "support/rng.hpp"

namespace sliq {
class Engine;  // core/engine_registry.hpp
}

namespace sliq::metrics {
class Registry;  // support/metrics.hpp
}

namespace sliq::noise {

struct TrajectoryOptions {
  unsigned trajectories = 1000;
  /// Global index of the first trajectory: trajectory i of this run
  /// consumes substream split(firstTrajectory + i). Shard runs covering
  /// disjoint [offset, offset+count) ranges under one seed therefore draw
  /// exactly the deviates of the corresponding slice of a monolithic run,
  /// and their count histograms merge additively to the monolithic result
  /// bit for bit (the CLI's --traj-offset / --merge-counts contract).
  unsigned firstTrajectory = 0;
  /// Worker threads; 0 auto-detects hardware concurrency. Results never
  /// depend on this value.
  unsigned threads = 1;
  std::uint64_t seed = 1;
  /// Disables the Pauli-frame fast path (tests and the bench baseline).
  bool forceGeneric = false;
  /// Demands the Pauli-frame fast path, turning the silent fallback into a
  /// strict error: throws NoiseError when the circuit is non-Clifford or
  /// dynamic (frames do not commute through classical control), instead of
  /// quietly running the generic path.
  bool forcePauliFrame = false;
  /// Observability sink (DESIGN.md §11): when non-null and enabled, the
  /// runner records worker spans (one track per worker, merged in
  /// worker-index order so the aggregate is deterministic) and trajectory
  /// counters into it. Never owned; telemetry never touches the RNG
  /// substreams, so results are bit-identical with or without it.
  metrics::Registry* metrics = nullptr;
};

struct TrajectoryResult {
  /// Shot histogram keyed by bitstring (qubit n-1 leftmost, like the CLI's
  /// shot output). std::map keeps the iteration order deterministic.
  /// Dynamic circuits histogram their *classical register* instead (bit
  /// numClbits-1 leftmost): the creg stream is the output of a dynamic
  /// circuit, and the post-run quantum state is conditioned on it.
  std::map<std::string, std::uint64_t> counts;
  unsigned trajectories = 0;
  unsigned threadsUsed = 0;
  bool usedPauliFrameFastPath = false;
  double seconds = 0;

  double trajectoriesPerSecond() const {
    return seconds > 0 ? trajectories / seconds : 0;
  }
};

/// Runs `options.trajectories` noise trajectories of `circuit` under
/// `model` on the engine registered as `engineName`, fanning them across
/// worker threads. Throws NoiseError for an infeasible combination (model
/// qubit filters out of range, engine unsupported for the circuit, a
/// dynamic circuit on an engine without the dynamicCircuits capability or
/// with options.forcePauliFrame set).
///
/// Dynamic circuits run on a dedicated generic path: each trajectory
/// re-executes the classical control flow through Engine::runDynamic with
/// its own substream, sampling the attached channels of each *executed* op
/// in the shared canonical order (op deviates first — one per
/// measure/reset, plus one readout-flip deviate per measure when the model
/// has readout error — then one per channel site). Ops skipped by a failed
/// classical condition consume no deviates and receive no noise. The
/// histogram is keyed by the final classical register.
TrajectoryResult runTrajectories(const std::string& engineName,
                                 const QuantumCircuit& circuit,
                                 const NoiseModel& model,
                                 const TrajectoryOptions& options = {});

/// Facade overload: `prototype` names the engine (its own state is not
/// touched — trajectory execution needs one engine instance per worker or
/// per trajectory, created through the registry).
TrajectoryResult runTrajectories(Engine& prototype,
                                 const QuantumCircuit& circuit,
                                 const NoiseModel& model,
                                 const TrajectoryOptions& options = {});

/// Noisy expectation value ⟨O⟩ averaged over stochastic trajectories.
struct ExpectationResult {
  /// Mean over trajectories of the per-trajectory exact ⟨O⟩. The reduction
  /// runs in trajectory-index order regardless of which worker produced
  /// which value, so it is bit-identical for every thread count.
  double mean = 0;
  /// Sample standard deviation of the per-trajectory values, and the
  /// standard error of the mean (stddev/√trajectories) — the
  /// estimator-variance note of DESIGN.md §7. Both reduced in index order.
  double stddev = 0;
  double standardError = 0;
  unsigned trajectories = 0;
  unsigned threadsUsed = 0;
  bool usedPauliFrameFastPath = false;
  double seconds = 0;

  double trajectoriesPerSecond() const {
    return seconds > 0 ? trajectories / seconds : 0;
  }
};

/// Estimates ⟨O⟩ on the noisy device: each trajectory samples a Pauli
/// realization (consuming substream split(t) exactly like the histogram
/// runner) and contributes its engine-exact expectation — no shot noise,
/// only trajectory noise. Execution paths mirror runTrajectories: the
/// generic path runs each realization on a fresh engine and calls
/// Engine::expectation; the Pauli-frame fast path (Clifford circuits) runs
/// the ideal circuit once per worker, computes each string's ideal ⟨P⟩
/// once, and per trajectory only flips signs — a sampled frame F turns
/// ⟨F P F⟩ into ±⟨P⟩ by Pauli (anti)commutation, which is exact (the
/// channel.hpp "exact for Pauli observables" note). A `measure` rule scales
/// each string by (1−2p)^|support| analytically: symmetric readout flips
/// shrink a k-qubit parity by exactly that factor, and applying it in
/// closed form keeps the deviate accounting (and hence thread determinism)
/// untouched. Throws NoiseError / ObservableSpecError on infeasible
/// combinations, like runTrajectories; dynamic circuits always throw —
/// their ⟨O⟩ is conditioned on the classical outcome stream, so a single
/// trajectory-mean number would be ill-defined (the same restriction the
/// CLI enforces for --observable on dynamic circuits).
ExpectationResult runTrajectoryExpectation(const std::string& engineName,
                                           const QuantumCircuit& circuit,
                                           const NoiseModel& model,
                                           const PauliObservable& observable,
                                           const TrajectoryOptions& options = {});

/// Facade overload: `prototype` names the engine (its state is untouched).
ExpectationResult runTrajectoryExpectation(Engine& prototype,
                                           const QuantumCircuit& circuit,
                                           const NoiseModel& model,
                                           const PauliObservable& observable,
                                           const TrajectoryOptions& options = {});

/// One sampled Pauli-insertion realization of `circuit` under `model` —
/// the generic path's per-trajectory circuit, exposed for tests. Consumes
/// one uniform deviate per channel application, in gate order (gate1/gate2
/// rules first, then idle rules, operands in (controls..., targets...)
/// order, idle qubits ascending).
QuantumCircuit sampleRealization(const QuantumCircuit& circuit,
                                 const NoiseModel& model, Rng& rng);

/// An n-qubit Pauli operator tracked up to phase (phases never affect
/// Z-basis statistics), with conjugation through the Clifford gate set —
/// the fast path's error representation, exposed for tests.
class PauliFrame {
 public:
  explicit PauliFrame(unsigned numQubits);

  unsigned numQubits() const { return static_cast<unsigned>(x_.size()); }
  bool x(unsigned q) const { return x_[q]; }
  bool z(unsigned q) const { return z_[q]; }
  bool isIdentity() const;

  /// Multiplies `p` on qubit `q` into the frame (Paulis compose by XOR).
  void multiply(unsigned q, Pauli p);
  /// Replaces the frame P by U·P·U† for Clifford `gate`; throws NoiseError
  /// for non-Clifford gates (the fast path never reaches them).
  void propagateThrough(const Gate& gate);

 private:
  std::vector<bool> x_, z_;
};

}  // namespace sliq::noise
