#include "noise/channel.hpp"

#include <cmath>
#include <sstream>

namespace sliq::noise {

namespace {

void requireProbability(const char* channel, const char* param, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw NoiseError(std::string(channel) + ": " + param +
                     " must be in [0, 1], got " + std::to_string(p));
  }
}

}  // namespace

PauliChannel::PauliChannel(std::string name, double parameter, unsigned arity,
                           std::vector<PauliTerm> terms)
    : name_(std::move(name)),
      parameter_(parameter),
      arity_(arity),
      terms_(std::move(terms)) {
  double total = 0;
  for (const PauliTerm& t : terms_) {
    if (t.probability < 0) {
      throw NoiseError(name_ + ": negative Kraus probability");
    }
    total += t.probability;
  }
  // The factories build probabilities that sum to 1 exactly up to rounding;
  // anything beyond a few ulps means a construction bug, not noise.
  if (std::abs(total - 1.0) > 1e-12) {
    throw NoiseError(name_ + ": Kraus probabilities sum to " +
                     std::to_string(total) + ", expected 1");
  }
}

PauliChannel PauliChannel::bitFlip(double p) {
  requireProbability("bitflip", "p", p);
  return PauliChannel("bitflip", p, 1,
                      {{1.0 - p, {Pauli::kI, Pauli::kI}},
                       {p, {Pauli::kX, Pauli::kI}}});
}

PauliChannel PauliChannel::phaseFlip(double p) {
  requireProbability("phaseflip", "p", p);
  return PauliChannel("phaseflip", p, 1,
                      {{1.0 - p, {Pauli::kI, Pauli::kI}},
                       {p, {Pauli::kZ, Pauli::kI}}});
}

PauliChannel PauliChannel::depolarizing1(double p) {
  requireProbability("depolarizing", "p", p);
  return PauliChannel("depolarizing", p, 1,
                      {{1.0 - p, {Pauli::kI, Pauli::kI}},
                       {p / 3, {Pauli::kX, Pauli::kI}},
                       {p / 3, {Pauli::kY, Pauli::kI}},
                       {p / 3, {Pauli::kZ, Pauli::kI}}});
}

PauliChannel PauliChannel::depolarizing2(double p) {
  requireProbability("depolarizing2", "p", p);
  std::vector<PauliTerm> terms;
  terms.reserve(16);
  terms.push_back({1.0 - p, {Pauli::kI, Pauli::kI}});
  const Pauli paulis[4] = {Pauli::kI, Pauli::kX, Pauli::kY, Pauli::kZ};
  for (const Pauli a : paulis) {
    for (const Pauli b : paulis) {
      if (a == Pauli::kI && b == Pauli::kI) continue;
      terms.push_back({p / 15, {a, b}});
    }
  }
  return PauliChannel("depolarizing2", p, 2, std::move(terms));
}

PauliChannel PauliChannel::amplitudeDampingTwirl(double gamma) {
  requireProbability("damping", "gamma", gamma);
  // Chi-matrix diagonal of the amplitude-damping channel: with
  // K0 = ((1+√(1−γ))/2)·I + ((1−√(1−γ))/2)·Z and K1 = (√γ/2)·(X + iY),
  // twirling keeps exactly these four diagonal weights.
  const double root = std::sqrt(1.0 - gamma);
  const double pI = (1.0 + root) * (1.0 + root) / 4.0;
  const double pZ = (1.0 - root) * (1.0 - root) / 4.0;
  const double pXY = gamma / 4.0;
  return PauliChannel("damping", gamma, 1,
                      {{pI, {Pauli::kI, Pauli::kI}},
                       {pXY, {Pauli::kX, Pauli::kI}},
                       {pXY, {Pauli::kY, Pauli::kI}},
                       {pZ, {Pauli::kZ, Pauli::kI}}});
}

std::size_t PauliChannel::sample(Rng& rng) const {
  const double u = rng.uniform();
  double acc = 0;
  for (std::size_t i = 0; i + 1 < terms_.size(); ++i) {
    acc += terms_[i].probability;
    if (u < acc) return i;
  }
  // Rounding guard: the tail term absorbs any accumulated float slack.
  return terms_.size() - 1;
}

std::string PauliChannel::summary() const {
  std::ostringstream os;
  os << name_ << "(" << (name_ == "damping" ? "gamma=" : "p=") << parameter_
     << ")";
  return os.str();
}

}  // namespace sliq::noise
