// sliqsim — command-line front door to the exact bit-sliced simulator.
//
// Usage:
//   sliqsim [options] <circuit.qasm | circuit.real>
//
// Options:
//   --engine exact|qmdd|chp    simulation engine (default: exact)
//   --shots N                  sample N basis states (default: 0)
//   --probs                    print per-qubit Pr[q=1]
//   --amps K                   print the first K nonzero exact amplitudes
//   --modify-h                 apply the paper's H-modification (.real only)
//   --optimize                 run the peephole optimizer before simulating
//   --seed S                   RNG seed (default: 1)
//   --stats                    print engine statistics
#include <cstring>
#include <iostream>
#include <string>

#include "circuit/qasm.hpp"
#include "circuit/optimizer.hpp"
#include "circuit/real_format.hpp"
#include "core/simulator.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "stabilizer/stabilizer.hpp"
#include "support/memuse.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

struct Options {
  std::string path;
  std::string engine = "exact";
  unsigned shots = 0;
  bool probs = false;
  unsigned amps = 0;
  bool modifyH = false;
  bool optimize = false;
  std::uint64_t seed = 1;
  bool stats = false;
};

int usage() {
  std::cerr << "usage: sliqsim [--engine exact|qmdd|chp] [--shots N] "
               "[--probs] [--amps K] [--modify-h] [--optimize] [--seed S] "
               "[--stats] "
               "<circuit.qasm|circuit.real>\n";
  return 2;
}

bool endsWith(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

std::string bitsToString(const std::vector<bool>& bits) {
  std::string s;
  for (unsigned q = static_cast<unsigned>(bits.size()); q-- > 0;)
    s += bits[q] ? '1' : '0';
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sliq;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.engine = v;
    } else if (arg == "--shots") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.shots = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--probs") {
      opt.probs = true;
    } else if (arg == "--amps") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.amps = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--modify-h") {
      opt.modifyH = true;
    } else if (arg == "--optimize") {
      opt.optimize = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opt.path = arg;
    }
  }
  if (opt.path.empty()) return usage();

  try {
    QuantumCircuit circuit(1);
    if (endsWith(opt.path, ".real")) {
      const RealProgram program = parseRealFile(opt.path);
      circuit = opt.modifyH ? modifyWithHadamards(program)
                            : instantiateOriginal(program, opt.seed);
    } else {
      circuit = parseQasmFile(opt.path);
    }
    std::cout << "loaded: " << circuit.summary() << "\n";
    if (opt.optimize) {
      OptimizerReport report;
      circuit = optimizeCircuit(circuit, &report);
      std::cout << "optimized: " << report.gatesBefore << " -> "
                << report.gatesAfter << " gates\n";
    }

    Rng rng(opt.seed);
    WallTimer timer;

    if (opt.engine == "chp") {
      StabilizerSimulator sim(circuit.numQubits());
      sim.run(circuit);
      std::cout << "simulated in " << timer.seconds() << " s (stabilizer)\n";
      if (opt.probs) {
        for (unsigned q = 0; q < circuit.numQubits(); ++q)
          std::cout << "Pr[q" << q << "=1] = " << sim.probabilityOne(q)
                    << "\n";
      }
      for (unsigned s = 0; s < opt.shots; ++s) {
        std::string bits;
        StabilizerSimulator shot(circuit.numQubits());
        shot.run(circuit);
        for (unsigned q = circuit.numQubits(); q-- > 0;)
          bits += shot.measure(q, rng) ? '1' : '0';
        std::cout << "shot " << s << ": " << bits << "\n";
      }
      return 0;
    }
    if (opt.engine == "qmdd") {
      qmdd::QmddSimulator sim(circuit.numQubits());
      sim.run(circuit);
      std::cout << "simulated in " << timer.seconds() << " s (QMDD), Σ|α|² = "
                << sim.totalProbability() << "\n";
      if (opt.probs) {
        for (unsigned q = 0; q < circuit.numQubits(); ++q)
          std::cout << "Pr[q" << q << "=1] = " << sim.probabilityOne(q)
                    << "\n";
      }
      if (opt.stats) {
        std::cout << "peak DD nodes: " << sim.peakNodes() << "\n";
      }
      return 0;
    }

    SliqSimulator sim(circuit.numQubits());
    sim.run(circuit);
    std::cout << "simulated in " << timer.seconds()
              << " s (exact bit-sliced engine)\n";
    std::cout << "k = " << sim.kScalar() << ", r = " << sim.bitWidth()
              << ", Σ|α|² = " << sim.totalProbability() << " (exact)\n";
    if (opt.probs) {
      for (unsigned q = 0; q < circuit.numQubits(); ++q)
        std::cout << "Pr[q" << q << "=1] = " << sim.probabilityOne(q) << "\n";
    }
    if (opt.amps > 0 && circuit.numQubits() <= 32) {
      unsigned shown = 0;
      for (std::uint64_t i = 0;
           i < (std::uint64_t{1} << circuit.numQubits()) && shown < opt.amps;
           ++i) {
        const AlgebraicComplex amp = sim.amplitude(i);
        if (amp.isZero()) continue;
        std::cout << "amp[" << i << "] = " << amp.toString() << "\n";
        ++shown;
      }
    }
    for (unsigned s = 0; s < opt.shots; ++s) {
      std::cout << "shot " << s << ": " << bitsToString(sim.sampleAll(rng))
                << "\n";
    }
    if (opt.stats) {
      std::cout << "gates: " << sim.stats().gatesApplied
                << ", max r: " << sim.stats().maxBitWidth
                << ", peak BDD nodes: " << sim.stats().peakLiveNodes
                << ", peak RSS: " << toMiB(peakRssBytes()) << " MiB\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
