// sliqsim — command-line front door to the simulation engines.
//
// Usage:
//   sliqsim [options] <circuit.qasm | circuit.real>
//   sliqsim [options] --load-state FILE            (query a snapshot)
//   sliqsim --merge-counts <shard.txt>...          (merge shard histograms)
//
// Options:
//   --engine NAME              any registered engine (default: exact);
//                              built-ins: exact, qmdd, chp, statevector.
//                              NAME may also be "auto": the dispatcher
//                              scores every engine from the circuit's
//                              features (Clifford fraction, T count,
//                              two-qubit depth, width) and runs the
//                              cheapest feasible one, printing its
//                              rationale; a long Clifford prefix may run on
//                              the chp tableau first and hand the state
//                              over mid-circuit (DESIGN.md §13)
//   --shots N                  sample N basis states (default: 0). On a
//                              dynamic circuit (mid-circuit measure/reset/
//                              if), each shot re-executes the circuit and
//                              prints the final classical register instead
//   --probs                    print per-qubit Pr[q=1]
//   --amps K                   print the first K nonzero amplitudes
//   --modify-h                 apply the paper's H-modification (.real only)
//   --optimize                 run the peephole optimizer before simulating
//   --seed S                   RNG seed (default: 1)
//   --stats[=text|json]        print the per-run telemetry report (counters,
//                              gauges, phase timings — the
//                              sliq.run_report.v1 schema when json).
//                              Telemetry never perturbs simulation: output
//                              is bit-identical with or without it
//   --trace FILE               write a Chrome trace-event JSON timeline
//                              (spans + GC/memo instant events) to FILE;
//                              load in chrome://tracing or Perfetto
//   --observable FILE          Pauli-observable spec: print exact per-term
//                              and total expectation values ⟨O⟩; with
//                              --noise, print the trajectory-mean noisy
//                              expectation instead of the shot histogram
//   --noise FILE               noise spec: run stochastic trajectories and
//                              print the shot histogram (or, with
//                              --observable, the noisy expectation) instead
//                              of the ideal-state queries
//   --trajectories N           Monte-Carlo trajectories (default: 1000;
//                              only with --noise)
//   --traj-offset N            global index of the first trajectory
//                              (default: 0; only with --noise). Shard runs
//                              covering disjoint offset ranges under one
//                              --seed reproduce the corresponding slice of
//                              a monolithic run's trajectory substreams, so
//                              their histograms --merge-counts to the
//                              monolithic result bit for bit
//   --threads N                worker threads; 0 auto-detects hardware
//                              concurrency (default: 1). With --noise this
//                              fans trajectories across workers; otherwise
//                              it partitions the single-circuit dense
//                              kernels (statevector engine). Results are
//                              thread-count independent under a fixed
//                              --seed either way.
//   --save-state FILE          after the run, write the engine state as a
//                              sliq.state.v1 snapshot (support/
//                              serialize.hpp; DESIGN.md §12)
//   --load-state FILE          restore a snapshot before the run; with no
//                              circuit argument, query the snapshot
//                              directly (--probs/--amps/--shots/
//                              --observable compose as usual)
//   --warm-cache DIR           snapshot cache keyed by circuit-prefix
//                              digest: a cached prefix of the (optimized)
//                              circuit is restored instead of re-simulated
//                              — a full hit skips the gate loop entirely
//                              (counter warm_cache.hit) — and misses fill
//                              the cache for the next run
//   --merge-counts             merge the positional shard histogram dumps
//                              (produced with --noise + --traj-offset)
//                              additively; histogram to stdout, summary to
//                              stderr
//   --list-engines             list registered engines (with capability
//                              flags) and exit
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "circuit/optimizer.hpp"
#include "circuit/qasm.hpp"
#include "circuit/real_format.hpp"
#include "cli_options.hpp"
#include "core/dispatch.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "core/state_convert.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"
#include "support/bits.hpp"
#include "support/memuse.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"
#include "support/timer.hpp"
#include "warm_cache.hpp"

namespace {

using sliq::cli::Options;
using sliq::cli::circuitPrefixDigest;
using sliq::cli::warmCachePath;

int usage() {
  std::cerr << "usage: sliqsim [--engine auto|"
            << sliq::EngineRegistry::instance().namesJoined()
            << "] [--shots N] "
               "[--probs] [--amps K] [--modify-h] [--optimize] [--seed S] "
               "[--stats[=text|json]] [--trace FILE] [--observable FILE] "
               "[--noise FILE] [--trajectories N] [--traj-offset N] "
               "[--threads N] [--save-state FILE] [--load-state FILE] "
               "[--warm-cache DIR] [--list-engines] "
               "<circuit.qasm|circuit.real>\n"
               "       sliqsim --merge-counts <shard.txt>...\n";
  return 2;
}

int listEngines() {
  const sliq::EngineRegistry& registry = sliq::EngineRegistry::instance();
  for (const std::string& name : sliq::engineNames()) {
    const sliq::EngineCapabilities caps = registry.capabilities(name);
    const bool any = caps.batchedSampling || caps.noiseFastPath ||
                     caps.nativeExpectation || caps.dynamicCircuits ||
                     caps.invariantAudit || caps.serialization;
    std::cout << name << " — " << registry.describe(name) << " [capabilities:"
              << (caps.batchedSampling ? " batched-sampling" : "")
              << (caps.noiseFastPath ? " noise-fast-path" : "")
              << (caps.nativeExpectation ? " native-expectation" : "")
              << (caps.dynamicCircuits ? " dynamic-circuits" : "")
              << (caps.invariantAudit ? " invariant-audit" : "")
              << (caps.serialization ? " serialization" : "")
              << (any ? "" : " none") << "]\n";
  }
  return 0;
}

bool endsWith(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

/// CLI adapter over the pure parser in cli_options.hpp (which the unit
/// tests exercise directly): prints the error and reports success.
bool parseUnsigned(const char* flag, const char* text, std::uint64_t maxValue,
                   std::uint64_t* out) {
  const std::string error = sliq::cli::parseUnsigned(flag, text, maxValue, out);
  if (error.empty()) return true;
  std::cerr << "error: " << error << "\n";
  return false;
}

bool parseUnsigned(const char* flag, const char* text, unsigned* out) {
  std::uint64_t value = 0;
  if (!parseUnsigned(flag, text, std::numeric_limits<unsigned>::max(),
                     &value)) {
    return false;
  }
  *out = static_cast<unsigned>(value);
  return true;
}

/// Renders the requested telemetry: the --stats report to stdout and/or the
/// --trace Chrome timeline to its file. Returns false only on a trace I/O
/// failure (the caller exits nonzero).
bool emitTelemetry(const Options& opt, const sliq::metrics::RunReport& report,
                   const sliq::metrics::Registry& registry) {
  if (opt.stats) {
    if (opt.statsFormat == "json") {
      std::cout << report.toJson() << "\n";
    } else {
      std::cout << report.toText();
    }
  }
  if (!opt.tracePath.empty()) {
    std::ofstream out(opt.tracePath);
    if (!out) {
      std::cerr << "error: cannot open --trace file '" << opt.tracePath
                << "'\n";
      return false;
    }
    registry.writeChromeTrace(out);
    if (!out) {
      std::cerr << "error: failed writing --trace file '" << opt.tracePath
                << "'\n";
      return false;
    }
  }
  return true;
}

// ---- state snapshots -------------------------------------------------------

void saveEngineState(sliq::Engine& engine, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open snapshot file '" + path +
                             "' for writing");
  }
  engine.saveState(out);
  out.flush();
  if (!out) {
    throw std::runtime_error("failed writing snapshot file '" + path + "'");
  }
}

void loadEngineState(sliq::Engine& engine, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open snapshot file '" + path + "'");
  }
  engine.loadState(in);
}

// ---- warm-start cache ------------------------------------------------------
// Key helpers (circuitPrefixDigest / warmCachePath) live in warm_cache.hpp
// so the key contract — including the resolved-engine-only rule under
// --engine auto — is unit-tested directly.

/// Prepares the post-circuit state through the --warm-cache DIR snapshot
/// cache: the longest cached prefix of `circuit` is restored instead of
/// re-simulated (a full-circuit hit skips the gate loop entirely —
/// counter warm_cache.hit), the remaining gates are applied on top, and
/// the full-circuit state is written back so the next run hits. Restored
/// states pass the same snapshot validation as --load-state, so a corrupt
/// cache entry is a hard error, never a wrong state.
void runWithWarmCache(sliq::Engine& engine, const sliq::QuantumCircuit& circuit,
                      const Options& opt) {
  namespace fs = std::filesystem;
  using sliq::metrics::ScopedSpan;
  fs::create_directories(opt.warmCacheDir);

  const std::size_t gateCount = circuit.gateCount();
  std::size_t hitGates = 0;
  std::string hitPath;
  for (std::size_t len = gateCount; len >= 1; --len) {
    const std::string path =
        warmCachePath(opt.warmCacheDir, engine.name(), circuit.numQubits(),
                      circuitPrefixDigest(circuit, len));
    if (fs::exists(path)) {
      hitGates = len;
      hitPath = path;
      break;
    }
  }

  if (hitGates == gateCount && gateCount > 0) {
    loadEngineState(engine, hitPath);
    engine.metrics().add("warm_cache.hit");
    std::cout << "warm-cache: hit (" << gateCount << "/" << gateCount
              << " gates) — restored " << hitPath << "\n";
    return;
  }
  if (hitGates > 0) {
    loadEngineState(engine, hitPath);
    engine.metrics().add("warm_cache.partial");
    std::cout << "warm-cache: partial hit (" << hitGates << "/" << gateCount
              << " gates) — restored " << hitPath << "\n";
    const ScopedSpan span(engine.metrics(), "gate_loop");
    for (std::size_t i = hitGates; i < gateCount; ++i) {
      engine.applyGate(circuit.gate(i));
    }
  } else {
    engine.metrics().add("warm_cache.miss");
    engine.run(circuit);
  }
  const std::string fullPath =
      warmCachePath(opt.warmCacheDir, engine.name(), circuit.numQubits(),
                    circuitPrefixDigest(circuit, gateCount));
  saveEngineState(engine, fullPath);
  std::cout << "warm-cache: stored " << fullPath << "\n";
}

// ---- mid-circuit engine handoff --------------------------------------------

/// Executes the dispatcher's handoff plan: gates [0, splitIndex) on a fresh
/// chp tableau, state conversion into `engine`, gates [splitIndex, end)
/// there. The differential harness pins this path against a monolithic run
/// (<= 1e-10 on probabilities and expectations) for every split point.
/// Returns false — leaving `engine` dirty; the caller restarts
/// monolithically on a fresh engine — when the conversion refuses (typed
/// ConversionError / MemoryBudgetError), so a planner misprediction
/// degrades to the plain path instead of failing the run.
bool runWithHandoff(sliq::Engine& engine, const sliq::QuantumCircuit& circuit,
                    std::size_t splitIndex) {
  using sliq::metrics::ScopedSpan;
  try {
    const ScopedSpan span(engine.metrics(), "handoff");
    const std::unique_ptr<sliq::Engine> prefix =
        sliq::makeEngine("chp", circuit.numQubits());
    if (engine.metrics().enabled()) prefix->metrics().enable();
    {
      const ScopedSpan prefixSpan(engine.metrics(), "handoff.prefix");
      for (std::size_t i = 0; i < splitIndex; ++i)
        prefix->applyGate(circuit.gate(i));
    }
    prefix->exportTo(engine);
    // Fold the tableau's telemetry (its gate counters, the convert.* route
    // counters) into the main engine's registry before the suffix runs.
    if (engine.metrics().enabled()) engine.metrics().merge(prefix->metrics());
    {
      const ScopedSpan suffixSpan(engine.metrics(), "handoff.suffix");
      for (std::size_t i = splitIndex; i < circuit.gateCount(); ++i)
        engine.applyGate(circuit.gate(i));
    }
    engine.metrics().add("handoff.prefix_gates", splitIndex);
    return true;
  } catch (const sliq::ConversionError& e) {
    std::cerr << "handoff: conversion refused (" << e.what()
              << ") — falling back to a monolithic run\n";
    return false;
  } catch (const sliq::MemoryBudgetError& e) {
    std::cerr << "handoff: " << e.what()
              << " — falling back to a monolithic run\n";
    return false;
  }
}

// ---- shard-histogram merging -----------------------------------------------

/// --merge-counts: sums the "<bits>  <count>" rows of every input file
/// (narration lines are passed over; malformed rows and mixed register
/// widths are hard errors). Pure text processing — no engine, no circuit.
/// The merged histogram goes to stdout in sorted order (the trajectory
/// runner's own order), the summary line to stderr, so stdout diffs
/// bit-identically against a monolithic run's histogram rows.
int mergeCountsMain(const Options& opt) {
  std::map<std::string, std::uint64_t> merged;
  std::size_t width = 0;
  std::string widthFile;
  std::uint64_t total = 0;
  for (const std::string& file : opt.inputs) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "error: cannot open counts file '" << file << "'\n";
      return 1;
    }
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
      ++lineNo;
      std::string bits;
      std::uint64_t count = 0;
      bool isCountsLine = false;
      const std::string error =
          sliq::cli::parseCountsLine(line, &bits, &count, &isCountsLine);
      if (!error.empty()) {
        std::cerr << "error: " << file << ":" << lineNo << ": " << error
                  << "\n";
        return 1;
      }
      if (!isCountsLine) continue;
      if (width == 0) {
        width = bits.size();
        widthFile = file;
      } else if (bits.size() != width) {
        std::cerr << "error: " << file << ":" << lineNo
                  << ": bitstring width " << bits.size()
                  << " does not match width " << width << " from '"
                  << widthFile << "' (shards of one run share one register)\n";
        return 1;
      }
      merged[bits] += count;
      total += count;
    }
    if (in.bad()) {
      std::cerr << "error: I/O error reading '" << file << "'\n";
      return 1;
    }
  }
  for (const auto& [bits, count] : merged)
    std::cout << bits << "  " << count << "\n";
  std::cerr << "merged " << total << " count(s) from " << opt.inputs.size()
            << " file(s)\n";
  return 0;
}

// ---- ideal-state queries ---------------------------------------------------

/// The ideal-state queries (--observable/--probs/--amps/--shots) plus the
/// final telemetry emission — shared by the run-a-circuit path and the
/// pure --load-state query mode. Returns the process exit code.
int runStateQueries(const Options& opt, sliq::Engine& engine,
                    const sliq::PauliObservable& observable, sliq::Rng& rng,
                    bool telemetry) {
  using namespace sliq;
  if (!opt.observablePath.empty()) {
    // Exact expectations, one native contraction per string — the state
    // is never collapsed, so the queries below still see the same state.
    WallTimer obsTimer;
    double total = 0;
    for (const PauliString& term : observable.terms()) {
      const double value = engine.expectation(singleStringObservable(term));
      total += term.coefficient * value;
      std::cout << "<" << term.pauliText() << "> = " << std::setprecision(12)
                << value << " (coefficient " << term.coefficient << ")\n";
    }
    std::cout << "<O> = " << std::setprecision(12) << total << " in "
              << std::setprecision(6) << obsTimer.seconds() << " s\n";
  }
  if (opt.probs) {
    for (unsigned q = 0; q < engine.numQubits(); ++q)
      std::cout << "Pr[q" << q << "=1] = " << engine.probabilityOne(q)
                << "\n";
  }
  if (opt.amps > 0) {
    for (const auto& [index, value] : engine.nonzeroAmplitudes(opt.amps))
      std::cout << "amp[" << index << "] = " << value << "\n";
  }
  if (opt.shots > 0) {
    // Batched path: per-state setup (weight traversal, cumulative
    // distribution, ...) amortized across each chunk. Chunking keeps
    // memory bounded and the output streaming for huge shot counts.
    constexpr unsigned kChunk = 1u << 16;
    const metrics::ScopedSpan span(engine.metrics(), "sampling");
    double sampleSeconds = 0;
    for (unsigned done = 0; done < opt.shots;) {
      const unsigned batch = std::min(kChunk, opt.shots - done);
      WallTimer batchTimer;
      const std::vector<std::vector<bool>> shots =
          engine.sampleShots(batch, rng);
      sampleSeconds += batchTimer.seconds();
      for (std::size_t s = 0; s < shots.size(); ++s)
        std::cout << "shot " << done + s << ": " << bitsToString(shots[s])
                  << "\n";
      done += batch;
    }
    std::cout << "sampled " << opt.shots << " shots in " << sampleSeconds
              << " s\n";
  }
  if (telemetry) {
    const std::string stats = engine.statsSummary();
    if (opt.stats && opt.statsFormat == "text" && !stats.empty()) {
      std::cout << stats << "\n";
    }
    if (!emitTelemetry(opt, engine.runMetrics(), engine.metrics())) {
      return 1;
    }
  }
  return 0;
}

/// Pure snapshot-query mode: no circuit — the engine (and register width)
/// come from the snapshot header, the state from the snapshot body, and
/// the usual queries run against it.
int queryLoadedState(const Options& opt, sliq::metrics::Registry& cliMetrics,
                     bool telemetry) {
  using namespace sliq;
  std::ifstream peek(opt.loadStatePath, std::ios::binary);
  if (!peek) {
    std::cerr << "error: cannot open snapshot file '" << opt.loadStatePath
              << "'\n";
    return 1;
  }
  const serialize::SnapshotInfo info = serialize::readSnapshotInfo(peek);
  peek.close();

  // --engine overrides the header's representation (loadState then rejects
  // the mismatch with a clear diagnostic rather than silently ignoring the
  // user's flag).
  const std::string engineName =
      opt.engineGiven ? opt.engine : info.representation;
  std::unique_ptr<Engine> engine = makeEngine(engineName, info.numQubits);
  if (telemetry) {
    engine->metrics().enable();
    engine->metrics().merge(cliMetrics);
  }
  if (opt.threadsGiven) engine->setExecutionThreads(opt.threads);
  loadEngineState(*engine, opt.loadStatePath);
  std::cout << "loaded state: " << engine->name() << ", "
            << engine->numQubits() << " qubits (" << opt.loadStatePath
            << ")\n";

  PauliObservable observable;
  if (!opt.observablePath.empty()) {
    observable = PauliObservable::parseFile(opt.observablePath);
    observable.validateForWidth(engine->numQubits());
    std::cout << "observable: " << observable.summary() << "\n";
  }
  if (!opt.saveStatePath.empty()) {
    saveEngineState(*engine, opt.saveStatePath);
    std::cout << "saved state: " << opt.saveStatePath << "\n";
  }
  Rng rng(opt.seed);
  return runStateQueries(opt, *engine, observable, rng, telemetry);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sliq;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto nextPath = [&](const char* flag, std::string* out,
                        const char* what) -> bool {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::cerr << "error: " << flag << " requires " << what << "\n";
        return false;
      }
      *out = v;
      return true;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.engine = v;
      opt.engineGiven = true;
    } else if (arg == "--shots") {
      if (!parseUnsigned("--shots", next(), &opt.shots)) return 2;
    } else if (arg == "--probs") {
      opt.probs = true;
    } else if (arg == "--amps") {
      if (!parseUnsigned("--amps", next(), &opt.amps)) return 2;
    } else if (arg == "--modify-h") {
      opt.modifyH = true;
    } else if (arg == "--optimize") {
      opt.optimize = true;
    } else if (arg == "--seed") {
      if (!parseUnsigned("--seed", next(),
                         std::numeric_limits<std::uint64_t>::max(),
                         &opt.seed)) {
        return 2;
      }
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg.rfind("--stats=", 0) == 0) {
      opt.stats = true;
      opt.statsFormat = arg.substr(std::strlen("--stats="));
    } else if (arg == "--trace") {
      if (!nextPath("--trace", &opt.tracePath, "an output file path"))
        return 2;
    } else if (arg == "--noise") {
      if (!nextPath("--noise", &opt.noisePath, "a spec file path")) return 2;
    } else if (arg == "--observable") {
      if (!nextPath("--observable", &opt.observablePath, "a spec file path"))
        return 2;
    } else if (arg == "--trajectories") {
      if (!parseUnsigned("--trajectories", next(), &opt.trajectories))
        return 2;
      opt.trajectoriesGiven = true;
    } else if (arg == "--traj-offset") {
      if (!parseUnsigned("--traj-offset", next(), &opt.trajOffset)) return 2;
      opt.trajOffsetGiven = true;
    } else if (arg == "--threads") {
      // 0 is the auto-detect sentinel; cap the explicit count well below
      // anything spawnable so a typo cannot fork-bomb the host.
      std::uint64_t threads = 0;
      if (!parseUnsigned("--threads", next(), 1024, &threads)) return 2;
      opt.threads = static_cast<unsigned>(threads);
      opt.threadsGiven = true;
    } else if (arg == "--save-state") {
      if (!nextPath("--save-state", &opt.saveStatePath,
                    "a snapshot file path")) {
        return 2;
      }
    } else if (arg == "--load-state") {
      if (!nextPath("--load-state", &opt.loadStatePath,
                    "a snapshot file path")) {
        return 2;
      }
    } else if (arg == "--warm-cache") {
      if (!nextPath("--warm-cache", &opt.warmCacheDir,
                    "a cache directory path")) {
        return 2;
      }
    } else if (arg == "--merge-counts") {
      opt.mergeCounts = true;
    } else if (arg == "--list-engines") {
      return listEngines();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opt.inputs.push_back(arg);
    }
  }
  if (!opt.mergeCounts) {
    if (opt.inputs.size() > 1) {
      std::cerr << "error: expected one circuit file, got "
                << opt.inputs.size()
                << " positional arguments (multiple inputs are only for "
                   "--merge-counts)\n";
      return 2;
    }
    if (!opt.inputs.empty()) opt.path = opt.inputs.front();
    if (opt.path.empty() && opt.loadStatePath.empty()) return usage();
  }
  // Flag-combination rules live in cli_options.hpp (unit-tested directly).
  if (const std::string error = sliq::cli::validateOptions(opt);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (opt.mergeCounts) return mergeCountsMain(opt);

  // Telemetry recorded before the engine exists (parse, optimize) lands in
  // a CLI-local registry and is merged into the engine's afterwards — all
  // registries share the process-global epoch, so the phases line up on one
  // timeline.
  const bool telemetry = opt.stats || !opt.tracePath.empty();
  metrics::Registry cliMetrics;
  if (telemetry) cliMetrics.enable();

  try {
    if (opt.path.empty()) {
      // --load-state with no circuit: query the snapshot directly.
      return queryLoadedState(opt, cliMetrics, telemetry);
    }
    QuantumCircuit circuit(1);
    {
      const metrics::ScopedSpan span(cliMetrics, "parse");
      if (endsWith(opt.path, ".real")) {
        const RealProgram program = parseRealFile(opt.path);
        circuit = opt.modifyH ? modifyWithHadamards(program)
                              : instantiateOriginal(program, opt.seed);
      } else {
        circuit = parseQasmFile(opt.path);
      }
    }
    std::cout << "loaded: " << circuit.summary() << "\n";
    // Rules that depend on whether the circuit is dynamic (mid-circuit
    // measure/reset/classical control) — checkable only after parsing.
    if (const std::string error =
            sliq::cli::validateDynamic(opt, circuit.isDynamic());
        !error.empty()) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    if (opt.optimize) {
      const metrics::ScopedSpan span(cliMetrics, "optimize");
      OptimizerReport report;
      circuit = optimizeCircuit(circuit, &report);
      std::cout << "optimized: " << report.gatesBefore << " -> "
                << report.gatesAfter << " gates\n";
    }

    // --engine auto: score every registered engine against the circuit's
    // features and resolve to the cheapest feasible one before any registry
    // lookup (DESIGN.md §13). The plan's dispatch.* gauges land in the CLI
    // registry, so --stats reports them; the rationale prints always.
    std::string engineName = opt.engine;
    EnginePlan plan;
    const bool autoEngine = sliq::cli::isAutoEngine(opt);
    if (autoEngine) {
      const metrics::ScopedSpan span(cliMetrics, "dispatch");
      plan = planEngine(circuit);
      recordPlan(plan, cliMetrics);
      engineName = plan.chosen;
      std::cout << planRationale(plan);
    }

    // The one code path for every engine: name -> registry -> facade.
    std::unique_ptr<Engine> engine =
        makeEngine(engineName, circuit.numQubits());
    if (telemetry) {
      engine->metrics().enable();
      engine->metrics().merge(cliMetrics);
    }
    if (opt.threadsGiven && opt.noisePath.empty()) {
      engine->setExecutionThreads(opt.threads);
    }
    if (!engine->supports(circuit)) {
      std::cerr << "error: engine '" << engine->name()
                << "' does not support this circuit ("
                << EngineRegistry::instance().describe(engine->name())
                << ")\n";
      return 1;
    }
    if ((!opt.saveStatePath.empty() || !opt.loadStatePath.empty() ||
         !opt.warmCacheDir.empty()) &&
        !engine->capabilities().serialization) {
      std::cerr << "error: engine '" << engine->name()
                << "' does not declare the serialization capability "
                   "(--save-state/--load-state/--warm-cache need it)\n";
      return 1;
    }

    PauliObservable observable;
    if (!opt.observablePath.empty()) {
      observable = PauliObservable::parseFile(opt.observablePath);
      observable.validateForWidth(circuit.numQubits());
      std::cout << "observable: " << observable.summary() << "\n";
    }

    if (!opt.noisePath.empty()) {
      const noise::NoiseModel model = noise::NoiseModel::parseFile(opt.noisePath);
      std::cout << "noise: " << model.summary() << "\n";
      noise::TrajectoryOptions traj;
      traj.trajectories = opt.trajectories;
      traj.firstTrajectory = opt.trajOffset;
      traj.threads = opt.threads;
      traj.seed = opt.seed;
      traj.metrics = telemetry ? &engine->metrics() : nullptr;
      if (!opt.observablePath.empty()) {
        // Noisy expectation: the trajectory-mean of engine-exact ⟨O⟩,
        // bit-identical for every --threads under a fixed --seed (printed
        // with full precision so determinism diffs would catch any drift).
        const noise::ExpectationResult result = noise::runTrajectoryExpectation(
            *engine, circuit, model, observable, traj);
        std::cout << "<O> = " << std::setprecision(17) << result.mean
                  << std::setprecision(6) << "  (stat. error "
                  << result.standardError << " over " << result.trajectories
                  << " trajectories)\n";
        std::cout << "ran " << result.trajectories << " trajectories in "
                  << result.seconds << " s ("
                  << static_cast<std::uint64_t>(result.trajectoriesPerSecond())
                  << " traj/s, " << result.threadsUsed << " thread"
                  << (result.threadsUsed == 1 ? "" : "s") << ", "
                  << (result.usedPauliFrameFastPath ? "pauli-frame fast path"
                                                    : "generic path")
                  << ", " << engine->name() << ")\n";
        if (telemetry &&
            !emitTelemetry(opt, engine->runMetrics(), engine->metrics())) {
          return 1;
        }
        return 0;
      }
      const noise::TrajectoryResult result =
          noise::runTrajectories(*engine, circuit, model, traj);
      for (const auto& [bits, count] : result.counts)
        std::cout << bits << "  " << count << "\n";
      std::cout << "ran " << result.trajectories << " trajectories in "
                << result.seconds << " s ("
                << static_cast<std::uint64_t>(result.trajectoriesPerSecond())
                << " traj/s, " << result.threadsUsed << " thread"
                << (result.threadsUsed == 1 ? "" : "s") << ", "
                << (result.usedPauliFrameFastPath ? "pauli-frame fast path"
                                                  : "generic path")
                << ", " << engine->name() << ")\n";
      if (telemetry &&
          !emitTelemetry(opt, engine->runMetrics(), engine->metrics())) {
        return 1;
      }
      return 0;
    }

    // Resume semantics: the restored snapshot replaces |0...0⟩ as the
    // pre-run state, and the circuit (if any gates follow) applies on top.
    if (!opt.loadStatePath.empty()) {
      loadEngineState(*engine, opt.loadStatePath);
      std::cout << "resumed: " << engine->name() << " state from "
                << opt.loadStatePath << "\n";
    }

    Rng rng(opt.seed);
    WallTimer timer;
    if (circuit.isDynamic()) {
      if (opt.shots > 0) {
        // Per-shot re-execution: mid-circuit collapse makes each shot a
        // fresh run of the whole circuit; the shared Rng advances across
        // shots (one deviate per executed measure/reset), so the shot
        // stream is a pure function of --seed — and identical across
        // engines, the property the determinism smoke diffs.
        for (unsigned s = 0; s < opt.shots; ++s) {
          const std::unique_ptr<Engine> shotEngine =
              makeEngine(engineName, circuit.numQubits());
          if (telemetry) shotEngine->metrics().enable();
          const DynamicRun run = shotEngine->runDynamic(circuit, rng);
          std::cout << "shot " << s << ": " << bitsToString(run.creg)
                    << "\n";
          if (telemetry) {
            // Fold the shot engine's native totals into its registry, then
            // aggregate: counters sum across shots, gauges high-water.
            shotEngine->runMetrics();
            engine->metrics().merge(shotEngine->metrics());
          }
        }
        std::cout << "executed " << opt.shots
                  << " dynamic shots (classical register bits, per-shot "
                     "re-execution) in "
                  << timer.seconds() << " s (" << engine->name() << ")\n";
        if (telemetry) {
          // The facade `engine` never ran; calling its runMetrics() would
          // overwrite the aggregated counters with its own (zero) native
          // totals, so the report is assembled from the merged registry.
          engine->metrics().gaugeSet(
              "threads.resolved",
              static_cast<double>(engine->resolvedExecutionThreads()));
          engine->metrics().gaugeMax("rss.high_water_bytes",
                                     static_cast<double>(peakRssBytes()));
          metrics::RunReport report;
          report.engine = engine->name();
          report.qubits = circuit.numQubits();
          report.metrics = engine->metrics().snapshot();
          metrics::pinCommonSchemaKeys(report.metrics);
          if (!emitTelemetry(opt, report, engine->metrics())) return 1;
        }
        return 0;
      }
      const DynamicRun run = engine->runDynamic(circuit, rng);
      std::cout << "simulated in " << timer.seconds() << " s ("
                << engine->name() << ", dynamic)\n";
      std::cout << "creg: " << bitsToString(run.creg) << "\n";
    } else {
      if (!opt.warmCacheDir.empty()) {
        runWithWarmCache(*engine, circuit, opt);
      } else {
        bool ran = false;
        if (autoEngine && plan.handoff) {
          ran = runWithHandoff(*engine, circuit, plan.splitIndex);
          if (!ran) {
            // The refused handoff may have left partial state behind —
            // restart monolithically on a fresh engine.
            engine = makeEngine(engineName, circuit.numQubits());
            if (telemetry) {
              engine->metrics().enable();
              engine->metrics().merge(cliMetrics);
            }
            if (opt.threadsGiven) engine->setExecutionThreads(opt.threads);
          }
        }
        if (!ran) engine->run(circuit);
      }
      std::cout << "simulated in " << timer.seconds() << " s ("
                << engine->name() << ")\n";
    }
    const std::string summary = engine->runSummary();
    if (!summary.empty()) std::cout << summary << "\n";

    if (!opt.saveStatePath.empty()) {
      saveEngineState(*engine, opt.saveStatePath);
      std::cout << "saved state: " << opt.saveStatePath << "\n";
    }
    return runStateQueries(opt, *engine, observable, rng, telemetry);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
