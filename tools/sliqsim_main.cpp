// sliqsim — command-line front door to the simulation engines.
//
// Usage:
//   sliqsim [options] <circuit.qasm | circuit.real>
//
// Options:
//   --engine NAME              any registered engine (default: exact);
//                              built-ins: exact, qmdd, chp, statevector
//   --shots N                  sample N basis states (default: 0). On a
//                              dynamic circuit (mid-circuit measure/reset/
//                              if), each shot re-executes the circuit and
//                              prints the final classical register instead
//   --probs                    print per-qubit Pr[q=1]
//   --amps K                   print the first K nonzero amplitudes
//   --modify-h                 apply the paper's H-modification (.real only)
//   --optimize                 run the peephole optimizer before simulating
//   --seed S                   RNG seed (default: 1)
//   --stats[=text|json]        print the per-run telemetry report (counters,
//                              gauges, phase timings — the
//                              sliq.run_report.v1 schema when json).
//                              Telemetry never perturbs simulation: output
//                              is bit-identical with or without it
//   --trace FILE               write a Chrome trace-event JSON timeline
//                              (spans + GC/memo instant events) to FILE;
//                              load in chrome://tracing or Perfetto
//   --observable FILE          Pauli-observable spec: print exact per-term
//                              and total expectation values ⟨O⟩; with
//                              --noise, print the trajectory-mean noisy
//                              expectation instead of the shot histogram
//   --noise FILE               noise spec: run stochastic trajectories and
//                              print the shot histogram (or, with
//                              --observable, the noisy expectation) instead
//                              of the ideal-state queries
//   --trajectories N           Monte-Carlo trajectories (default: 1000;
//                              only with --noise)
//   --threads N                worker threads; 0 auto-detects hardware
//                              concurrency (default: 1). With --noise this
//                              fans trajectories across workers; otherwise
//                              it partitions the single-circuit dense
//                              kernels (statevector engine). Results are
//                              thread-count independent under a fixed
//                              --seed either way.
//   --list-engines             list registered engines (with capability
//                              flags) and exit
#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>

#include "circuit/optimizer.hpp"
#include "circuit/qasm.hpp"
#include "circuit/real_format.hpp"
#include "cli_options.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"
#include "support/bits.hpp"
#include "support/memuse.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using sliq::cli::Options;

int usage() {
  std::cerr << "usage: sliqsim [--engine "
            << sliq::EngineRegistry::instance().namesJoined()
            << "] [--shots N] "
               "[--probs] [--amps K] [--modify-h] [--optimize] [--seed S] "
               "[--stats[=text|json]] [--trace FILE] [--observable FILE] "
               "[--noise FILE] [--trajectories N] [--threads N] "
               "[--list-engines] <circuit.qasm|circuit.real>\n";
  return 2;
}

int listEngines() {
  const sliq::EngineRegistry& registry = sliq::EngineRegistry::instance();
  for (const std::string& name : sliq::engineNames()) {
    const sliq::EngineCapabilities caps = registry.capabilities(name);
    const bool any = caps.batchedSampling || caps.noiseFastPath ||
                     caps.nativeExpectation || caps.dynamicCircuits ||
                     caps.invariantAudit;
    std::cout << name << " — " << registry.describe(name) << " [capabilities:"
              << (caps.batchedSampling ? " batched-sampling" : "")
              << (caps.noiseFastPath ? " noise-fast-path" : "")
              << (caps.nativeExpectation ? " native-expectation" : "")
              << (caps.dynamicCircuits ? " dynamic-circuits" : "")
              << (caps.invariantAudit ? " invariant-audit" : "")
              << (any ? "" : " none") << "]\n";
  }
  return 0;
}

bool endsWith(const std::string& s, const char* suffix) {
  const std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

/// Checked parse of a non-negative integer flag value into [0, maxValue].
/// Rejects negatives (which atoi-then-cast used to wrap to huge unsigneds),
/// trailing garbage, overflow and empty strings, with a caller-facing
/// message naming the flag.
bool parseUnsigned(const char* flag, const char* text, std::uint64_t maxValue,
                   std::uint64_t* out) {
  if (text == nullptr || *text == '\0') {
    std::cerr << "error: " << flag << " requires a value\n";
    return false;
  }
  // strtoul silently accepts "-1" by wrapping; reject any sign up front.
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '-' || *p == '+') {
      std::cerr << "error: " << flag << " expects a non-negative integer, got '"
                << text << "'\n";
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    std::cerr << "error: " << flag << " expects an integer, got '" << text
              << "'\n";
    return false;
  }
  if (errno == ERANGE || value > maxValue) {
    std::cerr << "error: " << flag << " value '" << text
              << "' is out of range (max " << maxValue << ")\n";
    return false;
  }
  *out = value;
  return true;
}

bool parseUnsigned(const char* flag, const char* text, unsigned* out) {
  std::uint64_t value = 0;
  if (!parseUnsigned(flag, text, std::numeric_limits<unsigned>::max(),
                     &value)) {
    return false;
  }
  *out = static_cast<unsigned>(value);
  return true;
}

/// Renders the requested telemetry: the --stats report to stdout and/or the
/// --trace Chrome timeline to its file. Returns false only on a trace I/O
/// failure (the caller exits nonzero).
bool emitTelemetry(const Options& opt, const sliq::metrics::RunReport& report,
                   const sliq::metrics::Registry& registry) {
  if (opt.stats) {
    if (opt.statsFormat == "json") {
      std::cout << report.toJson() << "\n";
    } else {
      std::cout << report.toText();
    }
  }
  if (!opt.tracePath.empty()) {
    std::ofstream out(opt.tracePath);
    if (!out) {
      std::cerr << "error: cannot open --trace file '" << opt.tracePath
                << "'\n";
      return false;
    }
    registry.writeChromeTrace(out);
    if (!out) {
      std::cerr << "error: failed writing --trace file '" << opt.tracePath
                << "'\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sliq;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.engine = v;
    } else if (arg == "--shots") {
      if (!parseUnsigned("--shots", next(), &opt.shots)) return 2;
    } else if (arg == "--probs") {
      opt.probs = true;
    } else if (arg == "--amps") {
      if (!parseUnsigned("--amps", next(), &opt.amps)) return 2;
    } else if (arg == "--modify-h") {
      opt.modifyH = true;
    } else if (arg == "--optimize") {
      opt.optimize = true;
    } else if (arg == "--seed") {
      if (!parseUnsigned("--seed", next(),
                         std::numeric_limits<std::uint64_t>::max(),
                         &opt.seed)) {
        return 2;
      }
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg.rfind("--stats=", 0) == 0) {
      opt.stats = true;
      opt.statsFormat = arg.substr(std::strlen("--stats="));
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::cerr << "error: --trace requires an output file path\n";
        return 2;
      }
      opt.tracePath = v;
    } else if (arg == "--noise") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::cerr << "error: --noise requires a spec file path\n";
        return 2;
      }
      opt.noisePath = v;
    } else if (arg == "--observable") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::cerr << "error: --observable requires a spec file path\n";
        return 2;
      }
      opt.observablePath = v;
    } else if (arg == "--trajectories") {
      if (!parseUnsigned("--trajectories", next(), &opt.trajectories))
        return 2;
      opt.trajectoriesGiven = true;
    } else if (arg == "--threads") {
      // 0 is the auto-detect sentinel; cap the explicit count well below
      // anything spawnable so a typo cannot fork-bomb the host.
      std::uint64_t threads = 0;
      if (!parseUnsigned("--threads", next(), 1024, &threads)) return 2;
      opt.threads = static_cast<unsigned>(threads);
      opt.threadsGiven = true;
    } else if (arg == "--list-engines") {
      return listEngines();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      opt.path = arg;
    }
  }
  if (opt.path.empty()) return usage();
  // Flag-combination rules live in cli_options.hpp (unit-tested directly).
  if (const std::string error = sliq::cli::validateOptions(opt);
      !error.empty()) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  // Telemetry recorded before the engine exists (parse, optimize) lands in
  // a CLI-local registry and is merged into the engine's afterwards — all
  // registries share the process-global epoch, so the phases line up on one
  // timeline.
  const bool telemetry = opt.stats || !opt.tracePath.empty();
  metrics::Registry cliMetrics;
  if (telemetry) cliMetrics.enable();

  try {
    QuantumCircuit circuit(1);
    {
      const metrics::ScopedSpan span(cliMetrics, "parse");
      if (endsWith(opt.path, ".real")) {
        const RealProgram program = parseRealFile(opt.path);
        circuit = opt.modifyH ? modifyWithHadamards(program)
                              : instantiateOriginal(program, opt.seed);
      } else {
        circuit = parseQasmFile(opt.path);
      }
    }
    std::cout << "loaded: " << circuit.summary() << "\n";
    // Rules that depend on whether the circuit is dynamic (mid-circuit
    // measure/reset/classical control) — checkable only after parsing.
    if (const std::string error =
            sliq::cli::validateDynamic(opt, circuit.isDynamic());
        !error.empty()) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    if (opt.optimize) {
      const metrics::ScopedSpan span(cliMetrics, "optimize");
      OptimizerReport report;
      circuit = optimizeCircuit(circuit, &report);
      std::cout << "optimized: " << report.gatesBefore << " -> "
                << report.gatesAfter << " gates\n";
    }

    // The one code path for every engine: name -> registry -> facade.
    std::unique_ptr<Engine> engine =
        makeEngine(opt.engine, circuit.numQubits());
    if (telemetry) {
      engine->metrics().enable();
      engine->metrics().merge(cliMetrics);
    }
    if (opt.threadsGiven && opt.noisePath.empty()) {
      engine->setExecutionThreads(opt.threads);
    }
    if (!engine->supports(circuit)) {
      std::cerr << "error: engine '" << engine->name()
                << "' does not support this circuit ("
                << EngineRegistry::instance().describe(engine->name())
                << ")\n";
      return 1;
    }

    PauliObservable observable;
    if (!opt.observablePath.empty()) {
      observable = PauliObservable::parseFile(opt.observablePath);
      observable.validateForWidth(circuit.numQubits());
      std::cout << "observable: " << observable.summary() << "\n";
    }

    if (!opt.noisePath.empty()) {
      const noise::NoiseModel model = noise::NoiseModel::parseFile(opt.noisePath);
      std::cout << "noise: " << model.summary() << "\n";
      noise::TrajectoryOptions traj;
      traj.trajectories = opt.trajectories;
      traj.threads = opt.threads;
      traj.seed = opt.seed;
      traj.metrics = telemetry ? &engine->metrics() : nullptr;
      if (!opt.observablePath.empty()) {
        // Noisy expectation: the trajectory-mean of engine-exact ⟨O⟩,
        // bit-identical for every --threads under a fixed --seed (printed
        // with full precision so determinism diffs would catch any drift).
        const noise::ExpectationResult result = noise::runTrajectoryExpectation(
            *engine, circuit, model, observable, traj);
        std::cout << "<O> = " << std::setprecision(17) << result.mean
                  << std::setprecision(6) << "  (stat. error "
                  << result.standardError << " over " << result.trajectories
                  << " trajectories)\n";
        std::cout << "ran " << result.trajectories << " trajectories in "
                  << result.seconds << " s ("
                  << static_cast<std::uint64_t>(result.trajectoriesPerSecond())
                  << " traj/s, " << result.threadsUsed << " thread"
                  << (result.threadsUsed == 1 ? "" : "s") << ", "
                  << (result.usedPauliFrameFastPath ? "pauli-frame fast path"
                                                    : "generic path")
                  << ", " << engine->name() << ")\n";
        if (telemetry &&
            !emitTelemetry(opt, engine->runMetrics(), engine->metrics())) {
          return 1;
        }
        return 0;
      }
      const noise::TrajectoryResult result =
          noise::runTrajectories(*engine, circuit, model, traj);
      for (const auto& [bits, count] : result.counts)
        std::cout << bits << "  " << count << "\n";
      std::cout << "ran " << result.trajectories << " trajectories in "
                << result.seconds << " s ("
                << static_cast<std::uint64_t>(result.trajectoriesPerSecond())
                << " traj/s, " << result.threadsUsed << " thread"
                << (result.threadsUsed == 1 ? "" : "s") << ", "
                << (result.usedPauliFrameFastPath ? "pauli-frame fast path"
                                                  : "generic path")
                << ", " << engine->name() << ")\n";
      if (telemetry &&
          !emitTelemetry(opt, engine->runMetrics(), engine->metrics())) {
        return 1;
      }
      return 0;
    }

    Rng rng(opt.seed);
    WallTimer timer;
    if (circuit.isDynamic()) {
      if (opt.shots > 0) {
        // Per-shot re-execution: mid-circuit collapse makes each shot a
        // fresh run of the whole circuit; the shared Rng advances across
        // shots (one deviate per executed measure/reset), so the shot
        // stream is a pure function of --seed — and identical across
        // engines, the property the determinism smoke diffs.
        for (unsigned s = 0; s < opt.shots; ++s) {
          const std::unique_ptr<Engine> shotEngine =
              makeEngine(opt.engine, circuit.numQubits());
          if (telemetry) shotEngine->metrics().enable();
          const DynamicRun run = shotEngine->runDynamic(circuit, rng);
          std::cout << "shot " << s << ": " << bitsToString(run.creg)
                    << "\n";
          if (telemetry) {
            // Fold the shot engine's native totals into its registry, then
            // aggregate: counters sum across shots, gauges high-water.
            shotEngine->runMetrics();
            engine->metrics().merge(shotEngine->metrics());
          }
        }
        std::cout << "executed " << opt.shots
                  << " dynamic shots (classical register bits, per-shot "
                     "re-execution) in "
                  << timer.seconds() << " s (" << engine->name() << ")\n";
        if (telemetry) {
          // The facade `engine` never ran; calling its runMetrics() would
          // overwrite the aggregated counters with its own (zero) native
          // totals, so the report is assembled from the merged registry.
          engine->metrics().gaugeSet(
              "threads.resolved",
              static_cast<double>(engine->resolvedExecutionThreads()));
          engine->metrics().gaugeMax("rss.high_water_bytes",
                                     static_cast<double>(peakRssBytes()));
          metrics::RunReport report;
          report.engine = engine->name();
          report.qubits = circuit.numQubits();
          report.metrics = engine->metrics().snapshot();
          metrics::pinCommonSchemaKeys(report.metrics);
          if (!emitTelemetry(opt, report, engine->metrics())) return 1;
        }
        return 0;
      }
      const DynamicRun run = engine->runDynamic(circuit, rng);
      std::cout << "simulated in " << timer.seconds() << " s ("
                << engine->name() << ", dynamic)\n";
      std::cout << "creg: " << bitsToString(run.creg) << "\n";
    } else {
      engine->run(circuit);
      std::cout << "simulated in " << timer.seconds() << " s ("
                << engine->name() << ")\n";
    }
    const std::string summary = engine->runSummary();
    if (!summary.empty()) std::cout << summary << "\n";

    if (!opt.observablePath.empty()) {
      // Exact expectations, one native contraction per string — the state
      // is never collapsed, so the queries below still see the run() state.
      WallTimer obsTimer;
      double total = 0;
      for (const PauliString& term : observable.terms()) {
        const double value = engine->expectation(singleStringObservable(term));
        total += term.coefficient * value;
        std::cout << "<" << term.pauliText() << "> = " << std::setprecision(12)
                  << value << " (coefficient " << term.coefficient << ")\n";
      }
      std::cout << "<O> = " << std::setprecision(12) << total << " in "
                << std::setprecision(6) << obsTimer.seconds() << " s\n";
    }
    if (opt.probs) {
      for (unsigned q = 0; q < circuit.numQubits(); ++q)
        std::cout << "Pr[q" << q << "=1] = " << engine->probabilityOne(q)
                  << "\n";
    }
    if (opt.amps > 0) {
      for (const auto& [index, value] : engine->nonzeroAmplitudes(opt.amps))
        std::cout << "amp[" << index << "] = " << value << "\n";
    }
    if (opt.shots > 0) {
      // Batched path: per-state setup (weight traversal, cumulative
      // distribution, ...) amortized across each chunk. Chunking keeps
      // memory bounded and the output streaming for huge shot counts.
      constexpr unsigned kChunk = 1u << 16;
      const metrics::ScopedSpan span(engine->metrics(), "sampling");
      WallTimer shotTimer;
      double sampleSeconds = 0;
      for (unsigned done = 0; done < opt.shots;) {
        const unsigned batch = std::min(kChunk, opt.shots - done);
        WallTimer batchTimer;
        const std::vector<std::vector<bool>> shots =
            engine->sampleShots(batch, rng);
        sampleSeconds += batchTimer.seconds();
        for (std::size_t s = 0; s < shots.size(); ++s)
          std::cout << "shot " << done + s << ": " << bitsToString(shots[s])
                    << "\n";
        done += batch;
      }
      std::cout << "sampled " << opt.shots << " shots in " << sampleSeconds
                << " s\n";
    }
    if (telemetry) {
      const std::string stats = engine->statsSummary();
      if (opt.stats && opt.statsFormat == "text" && !stats.empty()) {
        std::cout << stats << "\n";
      }
      if (!emitTelemetry(opt, engine->runMetrics(), engine->metrics())) {
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
