// sliqsim option state + pure flag-combination validation, extracted from
// the CLI main so the combination rules are unit-testable without spawning
// the binary (tests/tools/test_cli_options.cpp). main() owns parsing and
// I/O; this header owns the "which flags make sense together" contract
// plus the pure text parsers (integer flag values, histogram dump lines).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace sliq::cli {

struct Options {
  /// Positional arguments, in order. Exactly one circuit file normally;
  /// one or more shard histogram files under --merge-counts; empty with
  /// --load-state (pure snapshot-query mode).
  std::vector<std::string> inputs;
  /// The circuit file (inputs[0] outside --merge-counts; may stay empty
  /// with --load-state).
  std::string path;
  std::string engine = "exact";
  bool engineGiven = false;
  unsigned shots = 0;
  bool probs = false;
  unsigned amps = 0;
  bool modifyH = false;
  bool optimize = false;
  std::uint64_t seed = 1;
  bool stats = false;
  /// --stats rendering: "text" (default) or "json" (the stable
  /// sliq.run_report.v1 schema).
  std::string statsFormat = "text";
  /// --trace FILE: Chrome trace-event JSON output path ("" = off).
  std::string tracePath;
  std::string noisePath;
  unsigned trajectories = 1000;
  bool trajectoriesGiven = false;
  /// --traj-offset N: global index of the first trajectory (shard runs).
  unsigned trajOffset = 0;
  bool trajOffsetGiven = false;
  unsigned threads = 1;
  bool threadsGiven = false;
  std::string observablePath;
  /// --save-state FILE: write a sliq.state.v1 snapshot after the run.
  std::string saveStatePath;
  /// --load-state FILE: restore a snapshot before the run (or, with no
  /// circuit, query the snapshot directly).
  std::string loadStatePath;
  /// --warm-cache DIR: snapshot cache keyed by circuit-prefix digest.
  std::string warmCacheDir;
  /// --merge-counts: merge shard histogram dumps additively and exit.
  bool mergeCounts = false;
};

/// True when the run asked for the dispatcher ("--engine auto", matched
/// case-insensitively like every registry name). "auto" is a planner
/// directive, not a registered engine: main() resolves it to a concrete
/// engine via planEngine() before any registry lookup.
inline bool isAutoEngine(const Options& opt) {
  if (!opt.engineGiven) return false;
  if (opt.engine.size() != 4) return false;
  const char* want = "auto";
  for (std::size_t i = 0; i < 4; ++i) {
    const char c = opt.engine[i];
    const char lower = c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
    if (lower != want[i]) return false;
  }
  return true;
}

/// Checked parse of a non-negative integer flag value into [0, maxValue].
/// Strictly base 10: base-0 parsing used to read zero-padded values as
/// octal ("--shots 010" meant 8) and accept hex seeds ("0x10" meant 16) —
/// both now rejected with a message naming the flag. Also rejects signs
/// (strtoull silently wraps "-1"), trailing garbage, overflow and empty
/// strings. Returns an error message, or "" on success with *out set.
inline std::string parseUnsigned(const char* flag, const char* text,
                                 std::uint64_t maxValue, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') {
    return std::string(flag) + " requires a value";
  }
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '-' || *p == '+') {
      return std::string(flag) + " expects a non-negative integer, got '" +
             text + "'";
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return std::string(flag) + " expects a base-10 integer, got '" + text +
           "'";
  }
  if (errno == ERANGE || value > maxValue) {
    return std::string(flag) + " value '" + text +
           "' is out of range (max " + std::to_string(maxValue) + ")";
  }
  *out = value;
  return "";
}

/// One line of a shard histogram dump (the "<bits>  <count>" lines the
/// trajectory runner prints; narration lines like "loaded:" / "ran N
/// trajectories..." are passed through). On a histogram line: sets
/// *isCountsLine = true, fills *bits / *count, returns "". On any other
/// line: sets *isCountsLine = false, returns "". A line that STARTS like a
/// histogram line but is malformed (missing count, junk after the count,
/// bits followed by non-separator characters) returns an error message.
inline std::string parseCountsLine(const std::string& line, std::string* bits,
                                   std::uint64_t* count, bool* isCountsLine) {
  *isCountsLine = false;
  std::size_t i = 0;
  while (i < line.size() && (line[i] == '0' || line[i] == '1')) ++i;
  if (i == 0) return "";  // narration line (or empty) — not a histogram row
  const std::string bitText = line.substr(0, i);
  std::size_t j = i;
  while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
  if (j == i) {
    return "malformed histogram line '" + line +
           "': expected whitespace then a count after the bitstring";
  }
  std::size_t k = line.size();
  while (k > j && (line[k - 1] == ' ' || line[k - 1] == '\t' ||
                   line[k - 1] == '\r')) {
    --k;
  }
  std::uint64_t value = 0;
  const std::string countText = line.substr(j, k - j);
  const std::string error =
      parseUnsigned("count", countText.c_str(),
                    std::numeric_limits<std::uint64_t>::max(), &value);
  if (!error.empty()) {
    return "malformed histogram line '" + line + "': " + error;
  }
  *bits = bitText;
  *count = value;
  *isCountsLine = true;
  return "";
}

/// Flag-combination validation: returns an error message for a nonsensical
/// combination, or "" when the combination is coherent. The rules:
///  * --merge-counts is a standalone mode (pure text processing — no
///    engine, no circuit): it composes with nothing but its positional
///    shard files.
///  * --trajectories / --traj-offset parameterize the trajectory runner,
///    which only exists under --noise. --threads is valid everywhere:
///    under --noise it fans trajectories across workers, otherwise it
///    partitions the single-circuit dense kernels
///    (Engine::setExecutionThreads) — both paths are thread-count
///    deterministic.
///  * --noise replaces the ideal-state queries (--shots/--probs/--amps)
///    with the trajectory histogram — except --observable, whose noisy
///    analogue (the trajectory-mean expectation) IS the --noise output.
///    --stats and --trace are telemetry about the run itself, not state
///    queries, so they compose with every mode (under --noise they report
///    the trajectory-worker aggregate).
///  * --save-state/--load-state snapshot the SINGLE state of an ideal run;
///    a --noise run has one transient state per trajectory, so neither
///    composes with it. --warm-cache caches ideal gate-loop prefixes for
///    the same reason — and it picks the initial state itself, so it also
///    excludes --load-state.
///  * --observable computes expectations analytically, so pairing it with
///    --shots is a category error: shot sampling estimates what
///    expectation() answers exactly (chi-squared tests pin the agreement).
///  * --stats accepts only the text and json renderings.
///  * --engine auto scores a *circuit*; a --load-state snapshot already
///    pins the representation in its header, so the dispatcher has nothing
///    to decide — the combination is a strict error (pinned: we reject
///    rather than silently respecting the header, so the user's "choose
///    for me" request is never quietly ignored). --warm-cache DOES compose
///    with auto: the cache key is formed from the resolved engine
///    (tools/warm_cache.hpp), so runs resolving to different engines never
///    share an entry.
inline std::string validateOptions(const Options& opt) {
  if (opt.mergeCounts) {
    if (opt.engineGiven || opt.shots > 0 || opt.probs || opt.amps > 0 ||
        opt.modifyH || opt.optimize || opt.stats || !opt.tracePath.empty() ||
        !opt.noisePath.empty() || !opt.observablePath.empty() ||
        opt.trajectoriesGiven || opt.trajOffsetGiven || opt.threadsGiven ||
        !opt.saveStatePath.empty() || !opt.loadStatePath.empty() ||
        !opt.warmCacheDir.empty()) {
      return "--merge-counts is a standalone mode: it takes only shard "
             "histogram files as positional arguments";
    }
    if (opt.inputs.empty()) {
      return "--merge-counts needs at least one shard histogram file";
    }
    return "";
  }
  if (opt.noisePath.empty() && opt.trajectoriesGiven) {
    return "--trajectories requires --noise";
  }
  if (opt.noisePath.empty() && opt.trajOffsetGiven) {
    return "--traj-offset requires --noise (it selects which slice of the "
           "trajectory substreams this shard runs)";
  }
  if (opt.stats && opt.statsFormat != "text" && opt.statsFormat != "json") {
    return "--stats format must be 'text' or 'json', got '" +
           opt.statsFormat + "'";
  }
  if (!opt.observablePath.empty() && opt.shots > 0) {
    return "--observable computes expectations analytically; drop --shots "
           "(or use --noise --trajectories N for the noisy trajectory-mean "
           "estimator)";
  }
  if (!opt.noisePath.empty() &&
      (opt.shots > 0 || opt.probs || opt.amps > 0)) {
    return "--noise replaces the ideal-state queries; drop "
           "--shots/--probs/--amps (trajectory counts are the noisy "
           "analogue of shots, --observable the noisy analogue of "
           "expectations)";
  }
  if (!opt.noisePath.empty() && !opt.saveStatePath.empty()) {
    return "--save-state needs the single final state of an ideal run; a "
           "--noise run has one transient state per trajectory";
  }
  if (!opt.noisePath.empty() && !opt.loadStatePath.empty()) {
    return "--load-state resumes a single ideal state; --noise re-executes "
           "every trajectory from |0...0> (drop one of them)";
  }
  if (!opt.noisePath.empty() && !opt.warmCacheDir.empty()) {
    return "--warm-cache caches ideal gate-loop prefixes; it does not "
           "compose with --noise trajectories";
  }
  if (isAutoEngine(opt) && !opt.loadStatePath.empty()) {
    return "--engine auto scores a circuit, but the --load-state snapshot "
           "header already pins the representation; drop --engine auto (the "
           "header engine is used) or name a concrete engine";
  }
  if (!opt.warmCacheDir.empty() && !opt.loadStatePath.empty()) {
    return "--warm-cache and --load-state both pick the pre-run state; use "
           "one or the other";
  }
  if (opt.path.empty() && !opt.loadStatePath.empty() &&
      (opt.modifyH || opt.optimize || !opt.warmCacheDir.empty())) {
    return "--modify-h/--optimize/--warm-cache transform a circuit; there "
           "is none in pure --load-state query mode";
  }
  return "";
}

/// Flag-combination rules that need the parsed circuit: some combinations
/// are only nonsensical for *dynamic* circuits (mid-circuit measure/reset/
/// classical control), which main() discovers after parsing. Same contract
/// as validateOptions: an error message, or "" when coherent.
///  * --observable needs the (single, uncollapsed) state prepared by
///    run(); a dynamic circuit collapses mid-run, so its expectations are
///    conditioned on the classical outcome stream — the strict error
///    mirrors the facade's collapse restriction.
///  * --shots over a dynamic circuit re-executes per shot, so there is no
///    single final state for --probs/--amps to query — nor one to
///    snapshot (--save-state) or resume into each re-execution
///    (--load-state).
///  * --warm-cache restores a gate-loop prefix; a dynamic prefix consumes
///    measurement deviates, so restoring it would desynchronize the shot
///    stream from a straight-through run.
inline std::string validateDynamic(const Options& opt, bool circuitIsDynamic) {
  if (!circuitIsDynamic) return "";
  if (!opt.observablePath.empty()) {
    return "--observable requires a static circuit: a dynamic circuit "
           "collapses mid-run, so <O> is conditioned on the classical "
           "outcome stream (drop --observable, or query the post-run state "
           "programmatically via Engine::runDynamic + expectation)";
  }
  if (opt.shots > 0 && (opt.probs || opt.amps > 0)) {
    return "--shots on a dynamic circuit re-executes the circuit per shot, "
           "leaving no single final state; drop --probs/--amps or --shots";
  }
  if (opt.shots > 0 && !opt.saveStatePath.empty()) {
    return "--shots on a dynamic circuit re-executes the circuit per shot, "
           "leaving no single final state for --save-state to snapshot";
  }
  if (opt.shots > 0 && !opt.loadStatePath.empty()) {
    return "--shots on a dynamic circuit re-executes the circuit per shot "
           "on a fresh engine; --load-state resumes a single run (drop one)";
  }
  if (!opt.warmCacheDir.empty()) {
    return "--warm-cache requires a static circuit: a dynamic prefix "
           "consumes measurement deviates, so restoring it would "
           "desynchronize the shot stream";
  }
  return "";
}

}  // namespace sliq::cli
