// sliqsim option state + pure flag-combination validation, extracted from
// the CLI main so the combination rules are unit-testable without spawning
// the binary (tests/tools/test_cli_options.cpp). main() owns parsing and
// I/O; this header owns the "which flags make sense together" contract.
#pragma once

#include <cstdint>
#include <string>

namespace sliq::cli {

struct Options {
  std::string path;
  std::string engine = "exact";
  unsigned shots = 0;
  bool probs = false;
  unsigned amps = 0;
  bool modifyH = false;
  bool optimize = false;
  std::uint64_t seed = 1;
  bool stats = false;
  /// --stats rendering: "text" (default) or "json" (the stable
  /// sliq.run_report.v1 schema).
  std::string statsFormat = "text";
  /// --trace FILE: Chrome trace-event JSON output path ("" = off).
  std::string tracePath;
  std::string noisePath;
  unsigned trajectories = 1000;
  bool trajectoriesGiven = false;
  unsigned threads = 1;
  bool threadsGiven = false;
  std::string observablePath;
};

/// Flag-combination validation: returns an error message for a nonsensical
/// combination, or "" when the combination is coherent. The rules:
///  * --trajectories parameterizes the trajectory runner, which only
///    exists under --noise. --threads is valid everywhere: under --noise
///    it fans trajectories across workers, otherwise it partitions the
///    single-circuit dense kernels (Engine::setExecutionThreads) — both
///    paths are thread-count deterministic.
///  * --noise replaces the ideal-state queries (--shots/--probs/--amps)
///    with the trajectory histogram — except --observable, whose noisy
///    analogue (the trajectory-mean expectation) IS the --noise output.
///    --stats and --trace are telemetry about the run itself, not state
///    queries, so they compose with every mode (under --noise they report
///    the trajectory-worker aggregate).
///  * --observable computes expectations analytically, so pairing it with
///    --shots is a category error: shot sampling estimates what
///    expectation() answers exactly (chi-squared tests pin the agreement).
///  * --stats accepts only the text and json renderings.
inline std::string validateOptions(const Options& opt) {
  if (opt.noisePath.empty() && opt.trajectoriesGiven) {
    return "--trajectories requires --noise";
  }
  if (opt.stats && opt.statsFormat != "text" && opt.statsFormat != "json") {
    return "--stats format must be 'text' or 'json', got '" +
           opt.statsFormat + "'";
  }
  if (!opt.observablePath.empty() && opt.shots > 0) {
    return "--observable computes expectations analytically; drop --shots "
           "(or use --noise --trajectories N for the noisy trajectory-mean "
           "estimator)";
  }
  if (!opt.noisePath.empty() &&
      (opt.shots > 0 || opt.probs || opt.amps > 0)) {
    return "--noise replaces the ideal-state queries; drop "
           "--shots/--probs/--amps (trajectory counts are the noisy "
           "analogue of shots, --observable the noisy analogue of "
           "expectations)";
  }
  return "";
}

/// Flag-combination rules that need the parsed circuit: some combinations
/// are only nonsensical for *dynamic* circuits (mid-circuit measure/reset/
/// classical control), which main() discovers after parsing. Same contract
/// as validateOptions: an error message, or "" when coherent.
///  * --observable needs the (single, uncollapsed) state prepared by
///    run(); a dynamic circuit collapses mid-run, so its expectations are
///    conditioned on the classical outcome stream — the strict error
///    mirrors the facade's collapse restriction.
///  * --shots over a dynamic circuit re-executes per shot, so there is no
///    single final state for --probs/--amps to query.
inline std::string validateDynamic(const Options& opt, bool circuitIsDynamic) {
  if (!circuitIsDynamic) return "";
  if (!opt.observablePath.empty()) {
    return "--observable requires a static circuit: a dynamic circuit "
           "collapses mid-run, so <O> is conditioned on the classical "
           "outcome stream (drop --observable, or query the post-run state "
           "programmatically via Engine::runDynamic + expectation)";
  }
  if (opt.shots > 0 && (opt.probs || opt.amps > 0)) {
    return "--shots on a dynamic circuit re-executes the circuit per shot, "
           "leaving no single final state; drop --probs/--amps or --shots";
  }
  return "";
}

}  // namespace sliq::cli
