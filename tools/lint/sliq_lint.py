#!/usr/bin/env python3
"""sliq_lint — repo-specific structural lint rules clang-tidy cannot express.

Rules (see DESIGN.md §10 and support/assert.hpp):

  R1 ref-pairing      A file that calls BddManager::ref() must also call
                      deref() (lexical pairing of manual refcount traffic),
                      unless the call site carries a `// lint: ref-handoff`
                      annotation documenting an ownership transfer (see
                      restrictCube's contract in bdd/manager.hpp).
  R2 memo-traversal   Functions annotated `// lint: memo-traversal` memoize
                      node ids / edge words; creating nodes or running GC
                      inside them would invalidate the keys mid-walk. Their
                      bodies must not call any manager mutator.
  R3 rand-ban         No raw rand()/srand()/std::rand — all randomness goes
                      through support/rng.hpp so runs stay reproducible.
  R4 assert-purity    SLIQ_ASSERT compiles out under NDEBUG, so its argument
                      must be side-effect free: no ++/--, no assignment, no
                      known-mutating call. Hoist the expression to a local.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.cpp", "*.hpp")

# Manager mutators: anything that can allocate nodes, run GC, reorder, or
# touch the computed cache. Matching is on the bare call token so both
# `mgr.ite(...)` and unqualified member calls are caught.
MUTATOR_CALLS = (
    "makeNode", "allocNode", "ite", "andE", "orE", "xorE", "xnorE",
    "restrict1", "restrictCube", "cubeEdge", "newVar", "garbageCollect",
    "reorderSift", "maybeGc", "cacheInsert", "cacheClear", "swapLevels",
    "siftVar", "makeVNode", "makeMNode", "vAdd", "mAdd", "mvMultiply",
    "applyGate", "applyFusedOp", "invalidateMonolithic", "monolithic",
)

# Calls that are obviously stateful when they appear inside an assertion.
ASSERT_MUTATOR_CALLS = MUTATOR_CALLS + (
    "computeTotalFresh", "measure", "reset", "collapse", "sampleAll",
    "sampleShots", "run", "runStatic", "runDynamic", "push_back",
    "pop_back", "emplace", "emplace_back", "insert", "erase",
)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


REF_CALL = re.compile(r"\bref\s*\(")
DEREF_CALL = re.compile(r"\bderef\s*\(")
SIGNATURE = re.compile(r"^\s*(?:void|Edge|auto|bool|int)\b[^;{]*\bref\s*\(")


def check_ref_pairing(path: Path, text: str, code: str) -> list[Finding]:
    raw_lines = text.splitlines()
    code_lines = code.splitlines()
    ref_sites = []
    has_deref = False
    for idx, cline in enumerate(code_lines):
        if DEREF_CALL.search(cline):
            has_deref = True
        if REF_CALL.search(cline) and not SIGNATURE.match(cline):
            raw = raw_lines[idx] if idx < len(raw_lines) else ""
            prev = raw_lines[idx - 1] if idx > 0 else ""
            if "lint: ref-handoff" in raw or "lint: ref-handoff" in prev:
                continue
            ref_sites.append(idx + 1)
    if ref_sites and not has_deref:
        return [
            Finding(path, ln, "R1",
                    "ref() call without a lexically paired deref() in this "
                    "file; annotate `// lint: ref-handoff` if ownership is "
                    "handed to the caller")
            for ln in ref_sites
        ]
    return []


MEMO_ANNOTATION = re.compile(r"//\s*lint:\s*memo-traversal")


def function_body_span(code: str, start: int) -> tuple[int, int] | None:
    """Span of the first balanced {...} block at/after `start`."""
    open_idx = code.find("{", start)
    if open_idx == -1:
        return None
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return (open_idx, i + 1)
    return None


def check_memo_traversal(path: Path, text: str, code: str) -> list[Finding]:
    findings = []
    for m in MEMO_ANNOTATION.finditer(text):
        span = function_body_span(code, m.end())
        if span is None:
            findings.append(
                Finding(path, line_of(text, m.start()), "R2",
                        "memo-traversal annotation with no function body "
                        "after it"))
            continue
        body = code[span[0] : span[1]]
        for name in MUTATOR_CALLS:
            for call in re.finditer(r"\b" + name + r"\s*\(", body):
                findings.append(
                    Finding(path, line_of(code, span[0] + call.start()), "R2",
                            f"manager mutator {name}() called inside a "
                            "memo-traversal (memoized node ids would not "
                            "survive allocation/GC)"))
    return findings


RAND_CALL = re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\(")


def check_rand(path: Path, code: str) -> list[Finding]:
    return [
        Finding(path, line_of(code, m.start()), "R3",
                "raw rand()/srand() — use support/rng.hpp (sliq::Rng) so "
                "runs stay seedable and reproducible")
        for m in RAND_CALL.finditer(code)
    ]


ASSERT_CALL = re.compile(r"\bSLIQ_ASSERT\s*\(")
# An `=` that is not part of ==, !=, <=, >=, or a compound assignment.
BARE_ASSIGN = re.compile(r"(?<![=!<>+\-*/%&|^])=(?!=)")
COMPOUND_ASSIGN = re.compile(r"(?:[+\-*/%&|^]|<<|>>)=(?!=)")


def assert_argument(code: str, open_paren: int) -> str | None:
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1 : i]
    return None


def check_assert_purity(path: Path, code: str) -> list[Finding]:
    findings = []
    for m in ASSERT_CALL.finditer(code):
        # Skip the macro's own definition in support/assert.hpp.
        line_start = code.rfind("\n", 0, m.start()) + 1
        if code[line_start:m.start()].lstrip().startswith("#define"):
            continue
        arg = assert_argument(code, m.end() - 1)
        if arg is None:
            continue
        ln = line_of(code, m.start())
        if "++" in arg or "--" in arg:
            findings.append(
                Finding(path, ln, "R4",
                        "increment/decrement inside SLIQ_ASSERT (compiled "
                        "out under NDEBUG) — hoist it to a local"))
        if BARE_ASSIGN.search(arg) or COMPOUND_ASSIGN.search(arg):
            findings.append(
                Finding(path, ln, "R4",
                        "assignment inside SLIQ_ASSERT (compiled out under "
                        "NDEBUG) — hoist it to a local"))
        for name in ASSERT_MUTATOR_CALLS:
            if re.search(r"\b" + name + r"\s*\(", arg):
                findings.append(
                    Finding(path, ln, "R4",
                            f"call to mutating {name}() inside SLIQ_ASSERT "
                            "(compiled out under NDEBUG) — hoist it to a "
                            "local"))
    return findings


def lint_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(text)
    findings = []
    findings += check_ref_pairing(path, text, code)
    findings += check_memo_traversal(path, text, code)
    findings += check_rand(path, code)
    findings += check_assert_purity(path, code)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src tools)")
    parser.add_argument("--report", metavar="FILE",
                        help="also write findings to FILE")
    try:
        opts = parser.parse_args(argv)
    except SystemExit as e:
        return 2 if e.code not in (0, None) else 0

    repo_root = Path(__file__).resolve().parent.parent.parent
    roots = [Path(p) for p in opts.paths] if opts.paths else [
        repo_root / "src", repo_root / "tools"]

    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            for glob in SOURCE_GLOBS:
                files.extend(sorted(root.rglob(glob)))
        else:
            print(f"sliq_lint: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    lines = [str(f) for f in findings]
    for line in lines:
        print(line)
    summary = (f"sliq_lint: {len(findings)} finding(s) in "
               f"{len(files)} file(s)")
    print(summary)
    if opts.report:
        Path(opts.report).write_text(
            "\n".join(lines + [summary]) + "\n", encoding="utf-8")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
