#!/usr/bin/env python3
"""check_trace — validates Chrome trace-event JSON written by `sliqsim --trace`.

Checks (per file):

  C1 shape        Top-level object with a "traceEvents" list; every event is
                  an object carrying string "name", "ph" in {B, E, i},
                  integer "pid"/"tid" and a numeric non-negative "ts".
  C2 balance      Per (pid, tid) track, B/E events nest LIFO with matching
                  names and no E without an open B; no span left open at
                  end of file.
  C3 monotonic    Per track, timestamps never decrease in event order
                  (spans from one registry are recorded chronologically).
  C4 instants     Instant events carry the scope field "s" (chrome://tracing
                  renders unscoped instants inconsistently).

`--self-test` runs the linter against embedded good and bad traces and
exits nonzero when any verdict is wrong — the static-analysis CI job runs
this so the linter itself stays trustworthy.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

VALID_PHASES = {"B", "E", "i"}


def validate_events(data: object) -> list[str]:
    """Returns a list of human-readable findings (empty = valid)."""
    findings: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ['missing or non-list "traceEvents"']

    # (pid, tid) -> open-span name stack / last timestamp.
    stacks: dict[tuple[int, int], list[str]] = {}
    last_ts: dict[tuple[int, int], float] = {}

    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            findings.append(f"{where}: not an object")
            continue
        name = event.get("name")
        phase = event.get("ph")
        ts = event.get("ts")
        ok = True
        if not isinstance(name, str) or not name:
            findings.append(f"{where}: missing or empty name")
            ok = False
        if phase not in VALID_PHASES:
            findings.append(f"{where}: bad phase {phase!r}")
            ok = False
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                findings.append(f"{where}: missing integer {key}")
                ok = False
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            findings.append(f"{where}: bad timestamp {ts!r}")
            ok = False
        if not ok:
            continue

        track = (event["pid"], event["tid"])
        if track in last_ts and ts < last_ts[track]:
            findings.append(
                f"{where}: timestamp {ts} decreases on track {track} "
                f"(previous {last_ts[track]})")
        last_ts[track] = ts

        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                findings.append(f"{where}: E '{name}' with no open span "
                                f"on track {track}")
            elif stack[-1] != name:
                findings.append(f"{where}: E '{name}' closes open span "
                                f"'{stack[-1]}' on track {track}")
            else:
                stack.pop()
        else:  # instant
            if event.get("s") not in ("t", "p", "g"):
                findings.append(f"{where}: instant '{name}' missing scope 's'")

    for track, stack in stacks.items():
        for name in stack:
            findings.append(f"end of file: span '{name}' on track {track} "
                            "never closed")
    return findings


def validate_file(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable or malformed JSON: {e}"]
    return validate_events(data)


# ---- self test --------------------------------------------------------------

_GOOD = {
    "traceEvents": [
        {"name": "parse", "ph": "B", "pid": 1, "tid": 0, "ts": 0},
        {"name": "parse", "ph": "E", "pid": 1, "tid": 0, "ts": 10},
        {"name": "engine.run", "ph": "B", "pid": 1, "tid": 0, "ts": 11},
        {"name": "gate_loop", "ph": "B", "pid": 1, "tid": 0, "ts": 12},
        {"name": "bdd.gc", "ph": "i", "pid": 1, "tid": 0, "ts": 13, "s": "t"},
        {"name": "gate_loop", "ph": "E", "pid": 1, "tid": 0, "ts": 14},
        {"name": "engine.run", "ph": "E", "pid": 1, "tid": 0, "ts": 15},
        # A worker track interleaves freely with the main track.
        {"name": "trajectory.worker", "ph": "B", "pid": 1, "tid": 2, "ts": 3},
        {"name": "trajectory.worker", "ph": "E", "pid": 1, "tid": 2, "ts": 9},
    ],
    "displayTimeUnit": "ms",
}

_BAD = [
    # Unbalanced: span never closed.
    {"traceEvents": [
        {"name": "run", "ph": "B", "pid": 1, "tid": 0, "ts": 0}]},
    # Cross-nested spans (E closes the wrong name).
    {"traceEvents": [
        {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 0},
        {"name": "b", "ph": "B", "pid": 1, "tid": 0, "ts": 1},
        {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 2},
        {"name": "b", "ph": "E", "pid": 1, "tid": 0, "ts": 3}]},
    # Time going backwards on one track.
    {"traceEvents": [
        {"name": "a", "ph": "B", "pid": 1, "tid": 0, "ts": 5},
        {"name": "a", "ph": "E", "pid": 1, "tid": 0, "ts": 4}]},
    # Instant without scope; unknown phase; missing tid; negative ts.
    {"traceEvents": [
        {"name": "gc", "ph": "i", "pid": 1, "tid": 0, "ts": 0}]},
    {"traceEvents": [
        {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0}]},
    {"traceEvents": [{"name": "x", "ph": "B", "pid": 1, "ts": 0}]},
    {"traceEvents": [
        {"name": "x", "ph": "i", "pid": 1, "tid": 0, "ts": -1, "s": "t"}]},
    # Not a trace file at all.
    {"events": []},
    [],
]


def self_test() -> int:
    failures = 0
    good_findings = validate_events(_GOOD)
    if good_findings:
        failures += 1
        print("self-test: good trace rejected:", file=sys.stderr)
        for f in good_findings:
            print(f"  {f}", file=sys.stderr)
    for i, bad in enumerate(_BAD):
        if not validate_events(bad):
            failures += 1
            print(f"self-test: bad trace {i} accepted", file=sys.stderr)
    if failures:
        print(f"self-test FAILED ({failures} wrong verdicts)", file=sys.stderr)
        return 1
    print(f"self-test ok (1 good, {len(_BAD)} bad traces)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="trace JSON files to check")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the linter against embedded traces")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        parser.print_usage(sys.stderr)
        return 2

    status = 0
    for path in args.files:
        findings = validate_file(path)
        if findings:
            status = 1
            for f in findings:
                print(f"{path}: {f}")
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
