// Warm-start cache keying, extracted from the CLI main so the key contract
// is unit-testable without spawning the binary (tests/tools/
// test_cli_options.cpp). The cache key is (engine, width, prefix digest):
// snapshots of different representations are not interchangeable, so the
// engine name in the key must always be a RESOLVED engine — under
// `--engine auto` the key is formed only after the dispatcher picked one,
// and warmCachePath() enforces that (two runs of the same circuit that
// resolve to different engines must never share a cache entry).
#pragma once

#include <cstdint>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <string>

#include "circuit/circuit.hpp"
#include "support/assert.hpp"
#include "support/serialize.hpp"

namespace sliq::cli {

/// FNV-1a over the structural gate stream of the first `gateCount` gates —
/// the same mix as the differential harness's golden digests, so cache
/// keys are stable across runs and platforms.
inline std::uint64_t circuitPrefixDigest(const QuantumCircuit& circuit,
                                         std::size_t gateCount) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(circuit.numQubits());
  for (std::size_t i = 0; i < gateCount; ++i) {
    const Gate& g = circuit.gate(i);
    mix(0xff);  // gate separator
    mix(static_cast<std::uint64_t>(g.kind));
    for (const unsigned q : g.controls) mix(0x100 + q);
    for (const unsigned q : g.targets) mix(0x200 + q);
  }
  return h;
}

/// Cache entry path for (engine, width, digest) under `dir`. `engine` must
/// be a concrete registered engine — never the "auto" meta-name, which is
/// a planner input, not a representation (throws std::invalid_argument).
inline std::string warmCachePath(const std::string& dir,
                                 const std::string& engine,
                                 unsigned numQubits, std::uint64_t digest) {
  SLIQ_REQUIRE(engine != "auto",
               "warm-cache keys need the resolved engine name, not the "
               "'auto' meta-engine (resolve the dispatch plan first)");
  std::ostringstream name;
  name << engine << "-q" << numQubits << "-" << std::hex << std::setw(16)
       << std::setfill('0') << digest << serialize::kFileExtension;
  return (std::filesystem::path(dir) / name.str()).string();
}

}  // namespace sliq::cli
